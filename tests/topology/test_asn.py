"""Tests for the ASN model (reserved ranges, AS_TRANS, ASDOT)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.asn import (
    AS_TRANS,
    MAX_ASN_32BIT,
    asdot,
    is_32bit_only,
    is_as_trans,
    is_reserved,
    is_routable,
    parse_asdot,
    routable_asns,
    validate_asn,
)


class TestReservedRanges:
    def test_as_trans(self):
        assert is_as_trans(23456)
        assert not is_as_trans(23455)
        assert not is_reserved(AS_TRANS)  # tracked separately
        assert not is_routable(AS_TRANS)

    def test_zero_reserved(self):
        assert is_reserved(0)

    def test_documentation_range(self):
        assert is_reserved(64496)
        assert is_reserved(64511)
        assert not is_reserved(64197)  # IANA reserved starts at 64198
        assert is_reserved(64198)
        assert is_reserved(64495)

    def test_private_use(self):
        assert is_reserved(64512)
        assert is_reserved(65534)
        assert is_reserved(4200000000)
        assert is_reserved(4294967294)

    def test_last_asns(self):
        assert is_reserved(65535)
        assert is_reserved(4294967295)

    def test_ordinary_asns_routable(self):
        for asn in (1, 174, 3356, 13335, 396982, 212483):
            assert is_routable(asn)

    def test_out_of_range_not_routable(self):
        assert not is_routable(-5)
        assert not is_routable(MAX_ASN_32BIT + 1)


class TestValidateAsn:
    def test_accepts_valid(self):
        assert validate_asn(174) == 174
        assert validate_asn(0) == 0
        assert validate_asn(MAX_ASN_32BIT) == MAX_ASN_32BIT

    def test_rejects_negative_and_huge(self):
        with pytest.raises(ValueError):
            validate_asn(-1)
        with pytest.raises(ValueError):
            validate_asn(MAX_ASN_32BIT + 1)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_asn(True)


class TestAsdot:
    def test_16bit_plain(self):
        assert asdot(174) == "174"
        assert asdot(65535) == "65535"

    def test_32bit_dotted(self):
        assert asdot(65536) == "1.0"
        assert asdot(196608) == "3.0"
        assert asdot(196613) == "3.5"

    def test_parse_round_trip_16bit(self):
        assert parse_asdot("3356") == 3356

    def test_parse_round_trip_32bit(self):
        assert parse_asdot("3.0") == 196608

    def test_parse_rejects_bad_dotted(self):
        with pytest.raises(ValueError):
            parse_asdot("70000.1")

    @given(st.integers(min_value=0, max_value=MAX_ASN_32BIT))
    def test_asdot_round_trip(self, asn):
        assert parse_asdot(asdot(asn)) == asn

    @given(st.integers(min_value=65536, max_value=MAX_ASN_32BIT))
    def test_32bit_only_detection(self, asn):
        assert is_32bit_only(asn)


class TestRoutableFilter:
    def test_filters_junk(self):
        candidates = [174, AS_TRANS, 64512, 3356, 0]
        assert routable_asns(candidates) == [174, 3356]
