"""Tests for the IXP registry."""

import pytest

from repro.topology.ixp import IXP, IXPRegistry
from repro.topology.regions import Region


def _registry() -> IXPRegistry:
    reg = IXPRegistry()
    reg.add_ixp(IXP(ixp_id=0, name="DE-IX", region=Region.RIPE, members={1, 2, 3}))
    reg.add_ixp(IXP(ixp_id=1, name="US-IX", region=Region.ARIN, members={2, 4}))
    return reg


class TestIXPRegistry:
    def test_membership_index(self):
        reg = _registry()
        assert reg.memberships_of(2) == {0, 1}
        assert reg.memberships_of(4) == {1}
        assert reg.memberships_of(99) == set()

    def test_common_ixps(self):
        reg = _registry()
        assert reg.common_ixps(1, 2) == {0}
        assert reg.common_ixps(2, 4) == {1}
        assert reg.common_ixps(1, 4) == set()

    def test_colocated(self):
        reg = _registry()
        assert reg.colocated(1, 3)
        assert not reg.colocated(1, 4)
        assert not reg.colocated(99, 1)

    def test_join(self):
        reg = _registry()
        reg.join(5, 0)
        assert 5 in reg.ixp(0).members
        assert reg.memberships_of(5) == {0}

    def test_in_region(self):
        reg = _registry()
        assert [ixp.name for ixp in reg.in_region(Region.RIPE)] == ["DE-IX"]
        assert reg.in_region(Region.LACNIC) == []

    def test_duplicate_id_rejected(self):
        reg = _registry()
        with pytest.raises(ValueError):
            reg.add_ixp(IXP(ixp_id=0, name="DUP", region=Region.RIPE))

    def test_sizes(self):
        reg = _registry()
        assert len(reg) == 2
        assert reg.ixp(0).size == 3
