"""Tests for the organisation (AS2Org/sibling) model."""

import pytest

from repro.topology.orgs import Organisation, OrgMap


def _map_with_two_orgs() -> OrgMap:
    orgs = OrgMap()
    orgs.add_org(Organisation("ORG-A", "Alpha", "US", [1, 2, 3]))
    orgs.add_org(Organisation("ORG-B", "Beta", "DE", [10]))
    return orgs


class TestOrgMap:
    def test_org_of(self):
        orgs = _map_with_two_orgs()
        assert orgs.org_of(2) == "ORG-A"
        assert orgs.org_of(10) == "ORG-B"
        assert orgs.org_of(999) is None

    def test_are_siblings(self):
        orgs = _map_with_two_orgs()
        assert orgs.are_siblings(1, 3)
        assert not orgs.are_siblings(1, 10)

    def test_unmapped_never_siblings(self):
        # Applying AS2Org to unknown ASNs must not match them together.
        orgs = _map_with_two_orgs()
        assert not orgs.are_siblings(999, 998)
        assert not orgs.are_siblings(1, 999)

    def test_siblings_of(self):
        orgs = _map_with_two_orgs()
        assert orgs.siblings_of(1) == {2, 3}
        assert orgs.siblings_of(10) == set()
        assert orgs.siblings_of(999) == set()

    def test_sibling_pairs(self):
        orgs = _map_with_two_orgs()
        assert sorted(orgs.sibling_pairs()) == [(1, 2), (1, 3), (2, 3)]

    def test_assign(self):
        orgs = _map_with_two_orgs()
        orgs.assign(11, "ORG-B")
        assert orgs.are_siblings(10, 11)

    def test_assign_unknown_org_rejected(self):
        orgs = _map_with_two_orgs()
        with pytest.raises(KeyError):
            orgs.assign(99, "ORG-MISSING")

    def test_double_assignment_rejected(self):
        orgs = _map_with_two_orgs()
        with pytest.raises(ValueError):
            orgs.assign(1, "ORG-B")
        with pytest.raises(ValueError):
            orgs.add_org(Organisation("ORG-C", "Gamma", "FR", [1]))

    def test_duplicate_org_rejected(self):
        orgs = _map_with_two_orgs()
        with pytest.raises(ValueError):
            orgs.add_org(Organisation("ORG-A", "Dup", "US", []))

    def test_is_multi_as(self):
        orgs = _map_with_two_orgs()
        assert orgs.org("ORG-A").is_multi_as
        assert not orgs.org("ORG-B").is_multi_as
