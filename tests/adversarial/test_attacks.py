"""Attack planning, joint two-source propagation, and corpus pollution,
verified by hand on the tiny topology.

Tiny-graph facts the cases below lean on (see tests/conftest.py):
AS200 is a customer of AS40; AS300 is a customer of AS30 *and* AS40;
AS100 is a customer of AS30; AS40 peers with AS30 and buys transit
from AS20; AS70 buys transit from AS30 and peers with AS10.
"""

from __future__ import annotations

import pytest

from repro.adversarial.attacks import (
    AttackEvent,
    AttackView,
    event_blocked_set,
    inject_attacks,
    plan_events,
)
from repro.adversarial.policies import resolve_deployments
from repro.bgp.collectors import VantagePoint, routes_for_origin
from repro.bgp.communities import CommunityRegistry
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import ENGINE_ENV, compute_attack_routes
from repro.config import AdversarialConfig, ScenarioConfig
from repro.datasets.paths import PathCorpus
from repro.topology.generator import generate_topology
from repro.utils.rng import make_rng

ENGINES = ("vectorized", "legacy")


@pytest.fixture(params=ENGINES)
def engine(request, monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, request.param)
    return request.param


class TestJointPropagation:
    def test_origin_hijack_splits_adoption(self, tiny_graph, engine):
        # AS200 claims AS300's prefix.  AS40 has both at distance 1 and
        # the customer tie-break (lower child ASN) picks the attacker;
        # AS30's side of the graph keeps the legitimate route.
        adj = AdjacencyIndex(tiny_graph)
        joint = compute_attack_routes(adj, 300, 200, 0, blocked=())
        assert joint.path_from(40) == (40, 200)
        assert joint.pref[40] is RouteClass.CUSTOMER
        assert joint.path_from(30) == (30, 300)
        assert joint.path_from(10) == (10, 30, 300)
        # Provenance marks each side.
        view = AttackView(joint, AttackEvent("hijack_origin", 200, 300))
        assert view.src_of(40) == 1
        assert view.src_of(50) == 1          # (50, 40, 200)
        assert view.src_of(30) == 0
        assert view.src_of(10) == 0

    def test_rpki_deployer_rejects_origin_hijack(self, tiny_graph, engine):
        adj = AdjacencyIndex(tiny_graph)
        joint = compute_attack_routes(adj, 300, 200, 0, blocked={40})
        # The deployer keeps its legitimate route...
        assert joint.path_from(40) == (40, 300)
        # ...and everything downstream of it heals too: AS50 buys
        # transit from AS40 only.
        assert joint.path_from(50) == (50, 40, 300)

    def test_forged_origin_hijack_cannot_beat_shorter_clean_path(
        self, tiny_graph, engine
    ):
        # The forged path (200, 300) claims distance 1, so AS40 sees
        # the forged route at distance 2 and its direct customer route
        # to AS300 at distance 1 — the clean route wins where the
        # plain origin hijack above won.
        adj = AdjacencyIndex(tiny_graph)
        joint = compute_attack_routes(adj, 300, 200, 1, blocked={300})
        assert joint.path_from(40) == (40, 300)

    def test_leak_wins_as_customer_route_at_the_provider(
        self, tiny_graph, engine
    ):
        # AS40 leaks its peer-learned route to AS100 upward to its
        # provider AS20.  AS20's clean best is a peer route via AS10,
        # so the leaked "customer" route wins — the classic valley.
        adj = AdjacencyIndex(tiny_graph)
        event = AttackEvent("leak", 40, 100, (30, 100))
        joint = compute_attack_routes(
            adj, 100, 40, event.claim_dist, blocked=set(event.suffix)
        )
        view = AttackView(joint, event, tag_override=RouteClass.PEER)
        assert joint.pref[20] is RouteClass.CUSTOMER
        assert view.src_of(20) == 1
        assert view.path_from(20) == (20, 40, 30, 100)
        # The leaker's own table still says peer-learned.
        assert view.pref[40] is RouteClass.PEER
        # Suffix ASes are loop-blocked and keep their clean routes.
        assert joint.path_from(30) == (30, 100)
        assert joint.pref[30] is RouteClass.CUSTOMER

    def test_aspa_deployer_rejects_the_leak(self, tiny_graph, engine):
        adj = AdjacencyIndex(tiny_graph)
        joint = compute_attack_routes(
            adj, 100, 40, 2, blocked={30, 100, 20}
        )
        # With AS20 deploying ASPA the leaked route dies at its only
        # upward edge; AS20 keeps the clean peer route via AS10.
        assert joint.pref[20] is RouteClass.PEER
        assert joint.path_from(20) == (20, 10, 30, 100)

    def test_engines_agree_on_joint_routes(self, tiny_graph, monkeypatch):
        adj_results = {}
        for engine_name in ENGINES:
            monkeypatch.setenv(ENGINE_ENV, engine_name)
            adj = AdjacencyIndex(tiny_graph)
            joint = compute_attack_routes(adj, 300, 200, 0, blocked={40})
            adj_results[engine_name] = {
                asn: (joint.pref[asn], joint.path_from(asn))
                for asn in tiny_graph.asns()
                if joint.has_route(asn)
            }
        assert adj_results["vectorized"] == adj_results["legacy"]

    def test_attacker_equals_origin_rejected(self, tiny_graph, engine):
        adj = AdjacencyIndex(tiny_graph)
        with pytest.raises(ValueError, match="cannot be the origin"):
            compute_attack_routes(adj, 300, 300, 0)


class TestCollectedPollution:
    def _collect(self, tiny_graph, view, vps):
        communities = CommunityRegistry.build(
            tiny_graph.asns(), make_rng(5)
        )
        return routes_for_origin(view, vps, communities, strippers=set())

    def test_hijacked_routes_record_the_attacker_as_origin(
        self, tiny_graph, engine
    ):
        adj = AdjacencyIndex(tiny_graph)
        event = AttackEvent("hijack_origin", 200, 300)
        joint = compute_attack_routes(adj, 300, 200, 0, blocked=())
        routes = self._collect(
            tiny_graph, AttackView(joint, event),
            [VantagePoint(40, True), VantagePoint(10, True)],
        )
        by_vp = {route.vp: route for route in routes}
        # The polluted feed claims the attacker originated the prefix;
        # the clean feed still names the victim.
        assert by_vp[40].origin == 200
        assert by_vp[40].path == (40, 200)
        assert by_vp[10].origin == 300
        assert by_vp[10].path == (10, 30, 300)

    def test_forged_origin_hijack_invents_a_link(self, tiny_graph, engine):
        adj = AdjacencyIndex(tiny_graph)
        event = AttackEvent("hijack_forged", 200, 300, (300,))
        joint = compute_attack_routes(
            adj, 300, 200, 1, blocked=event_blocked_set(event, {})
        )
        routes = self._collect(
            tiny_graph, AttackView(joint, event), [VantagePoint(200, True)]
        )
        assert routes[0].path == (200, 300)
        assert routes[0].origin == 300
        # (200, 300) is not an edge of the tiny graph: the corpus now
        # carries a fake link for inference to trip on.
        assert 300 not in tiny_graph.neighbors_of(200)

    def test_partial_feed_leaker_hides_its_own_leak(
        self, tiny_graph, engine
    ):
        adj = AdjacencyIndex(tiny_graph)
        event = AttackEvent("leak", 40, 100, (30, 100))
        joint = compute_attack_routes(
            adj, 100, 40, 2, blocked=set(event.suffix)
        )
        view = AttackView(joint, event, tag_override=RouteClass.PEER)
        routes = self._collect(
            tiny_graph, view, [VantagePoint(40, False)]
        )
        # A partial feeder exports SELF/CUSTOMER routes only; the
        # leaker's table honestly says peer-learned, so the leak is
        # invisible from its own feed.
        assert routes == []


class TestEventPlanning:
    @pytest.fixture(scope="class")
    def small_topology(self):
        config = self._config()
        return generate_topology(config)

    @staticmethod
    def _config(adversarial=None):
        config = ScenarioConfig.small(seed=13)
        config.topology.n_ases = 140
        config.measurement.n_churn_rounds = 0
        return config.replace(adversarial=adversarial)

    def test_plan_is_deterministic(self, small_topology):
        layer = AdversarialConfig.from_dict({
            "attack": {"n_origin_hijacks": 2, "n_forged_origin_hijacks": 1,
                       "n_route_leaks": 2},
        })
        config = self._config(layer)
        plan_a = plan_events(small_topology, config)
        plan_b = plan_events(small_topology, config)
        assert plan_a == plan_b
        assert len(plan_a) == 5
        other = plan_events(
            small_topology, config.replace(seed=14)
        )
        assert other != plan_a

    def test_event_shapes(self, small_topology):
        layer = AdversarialConfig.from_dict({
            "attack": {"n_origin_hijacks": 1, "n_forged_origin_hijacks": 1,
                       "n_route_leaks": 1},
        })
        events = plan_events(small_topology, self._config(layer))
        by_kind = {event.kind: event for event in events}
        assert by_kind["hijack_origin"].suffix == ()
        forged = by_kind["hijack_forged"]
        assert forged.suffix == (forged.victim,)
        leak = by_kind["leak"]
        assert leak.suffix[-1] == leak.victim
        assert leak.claim_dist == len(leak.suffix) >= 1
        for event in events:
            assert event.attacker != event.victim

    def test_leak_respects_leak_prone_mask(self, small_topology):
        layer = AdversarialConfig.from_dict({
            "attack": {"n_route_leaks": 3},
            "deployments": [
                {"policy": "leak_prone", "strategy": "random",
                 "fraction": 0.3},
            ],
        })
        config = self._config(layer)
        mask = set(resolve_deployments(
            layer, small_topology, config.seed
        )["leak_prone"])
        events = plan_events(small_topology, config)
        leaks = [event for event in events if event.kind == "leak"]
        assert leaks, "no leak had an eligible leaker — widen the mask"
        assert all(event.attacker in mask for event in leaks)

    def test_empty_plan_without_adversarial_layer(self, small_topology):
        assert plan_events(small_topology, self._config(None)) == []

    def test_inject_attacks_grows_the_corpus(self, small_topology):
        layer = AdversarialConfig.from_dict({
            "attack": {"n_origin_hijacks": 2},
        })
        config = self._config(layer)
        from repro.bgp.collectors import collect_rounds, measurement_setup

        vps, communities, strippers = measurement_setup(
            small_topology, config
        )
        clean = collect_rounds(
            small_topology, config.replace(adversarial=None),
            vps, communities, strippers,
        )
        corpus = PathCorpus()
        for route in clean.routes():
            corpus.add_route(route)
        events = inject_attacks(
            small_topology, config, vps, communities, strippers, corpus
        )
        assert len(events) == 2
        assert len(corpus) >= len(clean)
