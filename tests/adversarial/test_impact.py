"""The pollution impact workload: clean-vs-polluted inference panel."""

from __future__ import annotations

import json

import pytest

from repro.adversarial.impact import (
    DEFAULT_ALGORITHMS,
    run_impact,
    truth_relationships,
)
from repro.config import AdversarialConfig, ScenarioConfig
from repro.topology.graph import RelType


def _impact_config(adversarial) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=11)
    config.topology.n_ases = 140
    config.measurement.n_vantage_points = 25
    config.measurement.n_churn_rounds = 0
    return config.replace(adversarial=adversarial)


LAYER = {
    "attack": {
        "n_origin_hijacks": 2,
        "n_forged_origin_hijacks": 2,
        "n_route_leaks": 2,
    },
    "deployments": [
        {"policy": "rpki", "strategy": "top_cone", "top_n": 10},
    ],
}


@pytest.fixture(scope="module")
def report():
    return run_impact(
        _impact_config(AdversarialConfig.from_dict(LAYER)),
        DEFAULT_ALGORITHMS,
    )


class TestRunImpact:
    def test_rejects_configs_without_attacks(self):
        with pytest.raises(ValueError, match="at least one attack event"):
            run_impact(_impact_config(None))
        empty = AdversarialConfig.from_dict(
            {"deployments": [{"policy": "rpki", "strategy": "top_cone",
                              "top_n": 5}]}
        )
        with pytest.raises(ValueError, match="at least one attack event"):
            run_impact(_impact_config(empty))

    def test_clean_twin_keeps_the_honest_fingerprint(self, report):
        honest = _impact_config(None)
        assert report.clean_fingerprint == honest.fingerprint()
        assert report.polluted_fingerprint != report.clean_fingerprint

    def test_pollution_grows_the_corpus(self, report):
        clean_paths, polluted_paths = report.corpus_sizes
        assert polluted_paths > clean_paths
        assert report.events

    def test_panel_covers_every_algorithm(self, report):
        by_algorithm = report.by_algorithm()
        assert sorted(by_algorithm) == sorted(DEFAULT_ALGORITHMS)
        for impact in by_algorithm.values():
            assert 0.0 <= impact.clean.accuracy <= 1.0
            assert 0.0 <= impact.polluted.accuracy <= 1.0
            assert impact.new_fake_links >= 0
            assert impact.clean.n_real <= impact.clean.n_links

    def test_bias_drift_covers_both_groupings(self, report):
        assert [drift.grouping for drift in report.bias] == [
            "regional", "topological",
        ]
        for drift in report.bias:
            assert 0.0 <= drift.share_drift <= 1.0

    def test_report_is_reproducible(self, report):
        again = run_impact(
            _impact_config(AdversarialConfig.from_dict(LAYER)),
            DEFAULT_ALGORITHMS,
        )
        assert again.to_dict() == report.to_dict()

    def test_report_is_json_serialisable(self, report):
        payload = json.dumps(report.to_dict(), sort_keys=True)
        decoded = json.loads(payload)
        assert decoded["n_events"] == len(report.events)
        assert decoded["corpus_paths_polluted"] == report.corpus_sizes[1]
        assert {entry["algorithm"] for entry in decoded["algorithms"]} == set(
            DEFAULT_ALGORITHMS
        )


class TestTruthRelationships:
    def test_matches_generator_links(self, tiny_topology):
        truth = truth_relationships(tiny_topology)
        graph = tiny_topology.graph
        assert len(truth) == len(list(graph.links()))
        assert truth.rel_of(30, 100) is RelType.P2C
        assert truth.rel_of(10, 20) is RelType.P2P
        assert truth.rel_of(10, 99999) is None
