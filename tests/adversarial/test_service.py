"""The ``/v1/adversarial/*`` routes over a real ephemeral socket."""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.config import SECURITY_POLICY_NAMES
from repro.service import ReproService, ServiceClient, ServiceError, serve_in_thread

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

#: Small enough that both twins build in a couple of seconds.
SCENARIO = {"preset": "small", "seed": 11, "ases": 140, "vps": 25,
            "churn_rounds": 0}
LAYER = {
    "attack": {"n_origin_hijacks": 2, "n_route_leaks": 1},
    "deployments": [
        {"policy": "rpki", "strategy": "top_cone", "top_n": 10},
    ],
}


@pytest.fixture(scope="module")
def server() -> Iterator[ReproService]:
    service = ReproService(pool_size=3)
    with serve_in_thread(service) as running:
        yield running


@pytest.fixture(scope="module")
def client(server: ReproService) -> Iterator[ServiceClient]:
    with ServiceClient(port=server.port) as instance:
        yield instance


@pytest.fixture(scope="module")
def impact(client: ServiceClient) -> dict:
    return client.request(
        "POST", "/v1/adversarial/impact", {**SCENARIO, "adversarial": LAYER}
    )


def test_policy_listing(client):
    listing = client.request("GET", "/v1/adversarial/policies")
    names = [policy["name"] for policy in listing["policies"]]
    assert names == sorted(SECURITY_POLICY_NAMES)
    by_name = {policy["name"]: policy for policy in listing["policies"]}
    assert by_name["rpki"]["blocks"] == ["hijack_origin"]
    assert by_name["aspa"]["blocks"] == ["hijack_forged", "leak"]
    assert by_name["gao_rexford"]["description"]


def test_impact_report_shape(impact):
    assert impact["scenario"] != impact["clean_scenario"]
    assert impact["n_events"] == len(impact["events"]) == 3
    assert impact["corpus_paths_polluted"] > impact["corpus_paths_clean"]
    assert {entry["algorithm"] for entry in impact["algorithms"]} == {
        "asrank", "problink", "toposcope",
    }
    assert [drift["grouping"] for drift in impact["bias"]] == [
        "regional", "topological",
    ]


def test_impact_report_is_memoised(client, impact, server):
    builds_before = server.pool.stats()["builds"]
    again = client.request(
        "POST", "/v1/adversarial/impact", {**SCENARIO, "adversarial": LAYER}
    )
    assert again == impact
    assert server.pool.stats()["builds"] == builds_before


def test_polluted_scenario_admitted_to_the_pool(client, impact):
    listing = client.scenarios()
    ids = {entry["scenario"] for entry in listing["scenarios"]}
    assert impact["scenario"] in ids
    assert impact["clean_scenario"] in ids


def test_scenario_build_accepts_adversarial_field(client, impact):
    built = client.request(
        "POST", "/v1/scenarios", {**SCENARIO, "adversarial": LAYER}
    )
    assert built["scenario"] == impact["scenario"]
    clean = client.request("POST", "/v1/scenarios", SCENARIO)
    assert clean["scenario"] == impact["clean_scenario"]


def test_impact_requires_attack_events(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/adversarial/impact", SCENARIO)
    assert excinfo.value.status == 400
    error = excinfo.value.payload["error"]
    assert error["code"] == "invalid_config"
    assert "at least one attack event" in error["message"]


def test_invalid_adversarial_layer_rejected(client):
    bad = {**SCENARIO, "adversarial": {"attack": {"hijacks": 1}}}
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/adversarial/impact", bad)
    assert excinfo.value.status == 400
    error = excinfo.value.payload["error"]
    assert error["code"] == "invalid_config"
    assert "unknown key(s) 'hijacks'" in error["message"]

    not_an_object = {**SCENARIO, "adversarial": [1, 2]}
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/scenarios", not_an_object)
    assert excinfo.value.status == 400
    assert "JSON object" in excinfo.value.payload["error"]["message"]


def test_invalid_algorithm_rejected(client):
    body = {**SCENARIO, "adversarial": LAYER, "algorithms": ["asrank", "x"]}
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/adversarial/impact", body)
    assert excinfo.value.status in (400, 404)
