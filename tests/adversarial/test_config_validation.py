"""Schema validation of the adversarial config layer.

Every malformed scenario/attack spec must fail at load time with a
precise message — offending key, expected type/range, accepted
alternatives — instead of deep inside a generator.
"""

from __future__ import annotations

import pytest

from repro.config import (
    AdversarialConfig,
    AttackConfig,
    ConfigError,
    PolicyDeployment,
    ScenarioConfig,
)


def adv(data: dict) -> AdversarialConfig:
    return AdversarialConfig.from_dict(data)


class TestPreciseErrors:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match=r"unknown key\(s\) 'atack'"):
            adv({"atack": {}})

    def test_accepted_keys_listed_in_message(self):
        with pytest.raises(ConfigError, match="accepted: deployments, attack"):
            adv({"bogus": 1})

    def test_unknown_attack_key(self):
        with pytest.raises(
            ConfigError, match=r"adversarial\.attack: unknown key\(s\) 'hijacks'"
        ):
            adv({"attack": {"hijacks": 3}})

    def test_negative_event_count(self):
        with pytest.raises(
            ConfigError,
            match=r"'n_origin_hijacks' must be >= 0, got -2",
        ):
            adv({"attack": {"n_origin_hijacks": -2}})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(
            ConfigError, match=r"'n_route_leaks' must be an integer, got bool"
        ):
            adv({"attack": {"n_route_leaks": True}})

    def test_fraction_out_of_range(self):
        with pytest.raises(
            ConfigError, match=r"'fraction' must be within \[0, 1\], got 1.5"
        ):
            adv({"deployments": [
                {"policy": "rpki", "strategy": "random", "fraction": 1.5}
            ]})

    def test_fraction_wrong_type(self):
        with pytest.raises(
            ConfigError, match=r"'fraction' must be a number in \[0, 1\]"
        ):
            adv({"deployments": [
                {"policy": "rpki", "strategy": "random", "fraction": "half"}
            ]})

    def test_unknown_policy_lists_alternatives(self):
        with pytest.raises(
            ConfigError,
            match=r"unknown policy 'bgpsec' \(accepted: gao_rexford, rpki, "
                  r"aspa, leak_prone\)",
        ):
            adv({"deployments": [{"policy": "bgpsec"}]})

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError, match="unknown strategy 'all'"):
            adv({"deployments": [{"policy": "rpki", "strategy": "all"}]})

    def test_deployment_error_carries_index_context(self):
        with pytest.raises(ConfigError, match=r"adversarial\.deployments\[1\]"):
            adv({"deployments": [
                {"policy": "rpki"},
                {"policy": "aspa", "strategy": "top_cone"},  # top_n missing
            ]})

    def test_top_cone_needs_top_n(self):
        with pytest.raises(
            ConfigError, match=r"'top_cone' needs top_n >= 1, got 0"
        ):
            adv({"deployments": [{"policy": "rpki", "strategy": "top_cone"}]})

    def test_explicit_needs_ases(self):
        with pytest.raises(ConfigError, match="non-empty 'ases'"):
            adv({"deployments": [{"policy": "aspa", "strategy": "explicit"}]})

    def test_ases_must_be_integer_list(self):
        with pytest.raises(ConfigError, match="list of integer ASNs"):
            adv({"deployments": [
                {"policy": "aspa", "strategy": "explicit", "ases": ["AS174"]}
            ]})

    def test_missing_policy_key(self):
        with pytest.raises(ConfigError, match="missing required key 'policy'"):
            adv({"deployments": [{"strategy": "random"}]})

    def test_duplicate_policy_deployments(self):
        with pytest.raises(
            ConfigError, match="duplicate deployment for policy 'rpki'"
        ):
            adv({"deployments": [
                {"policy": "rpki", "strategy": "random", "fraction": 0.2},
                {"policy": "rpki", "strategy": "top_cone", "top_n": 5},
            ]})

    def test_non_object_inputs(self):
        with pytest.raises(ConfigError, match="expected an object, got list"):
            adv([])
        with pytest.raises(ConfigError, match="'deployments' must be a list"):
            adv({"deployments": {"policy": "rpki"}})
        with pytest.raises(ConfigError, match="expected an object, got int"):
            AttackConfig.from_dict(3)
        with pytest.raises(ConfigError, match="expected an object, got str"):
            PolicyDeployment.from_dict("rpki")

    def test_config_error_is_a_value_error(self):
        # Callers that guard with `except ValueError` keep working.
        assert issubclass(ConfigError, ValueError)


class TestFingerprintRules:
    def test_none_adversarial_is_canonicalised_away(self):
        config = ScenarioConfig.small(seed=7)
        assert config.adversarial is None
        assert "adversarial" not in config.canonical_dict()

    def test_present_adversarial_is_canonicalised(self):
        config = ScenarioConfig.small(seed=7).replace(
            adversarial=adv({"attack": {"n_origin_hijacks": 1}})
        )
        data = config.canonical_dict()
        assert data["adversarial"]["attack"]["n_origin_hijacks"] == 1

    def test_scenario_validate_covers_adversarial(self):
        config = ScenarioConfig.small(seed=7)
        config.adversarial = AdversarialConfig(
            attack=AttackConfig(n_route_leaks=-1)
        )
        with pytest.raises(ConfigError, match="must be >= 0"):
            config.validate()

    def test_valid_layer_round_trips(self):
        layer = adv({
            "deployments": [
                {"policy": "rpki", "strategy": "top_cone", "top_n": 10},
                {"policy": "leak_prone", "strategy": "explicit",
                 "ases": [174, 3356]},
            ],
            "attack": {"n_origin_hijacks": 2, "n_route_leaks": 1},
        })
        assert layer.attack.total_events() == 3
        assert layer.deployments[1].ases == (174, 3356)
        config = ScenarioConfig.small(seed=7).replace(adversarial=layer)
        config.validate()
