"""Engine differential matrix for polluted corpora, plus the no-attack
byte regression.

The acceptance bar of the adversarial PR:

* across 8 seeds × {hijack, leak, RPKI-partial, ASPA-partial}, the
  vectorized and legacy propagation engines produce **byte-identical**
  polluted corpus artifacts;
* with no ``AttackConfig``, the clean seed-7 small-scenario artifacts
  (fingerprint, cache key, corpus.npc bytes, per-algorithm as-rel
  bytes) are unchanged from the pre-adversarial tree.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import ScenarioConfig, small_scenario
from repro.adversarial.attacks import plan_events
from repro.bgp.collectors import collect_rounds, measurement_setup
from repro.bgp.propagation import ENGINE_ENV
from repro.config import AdversarialConfig
from repro.pipeline.cache import ArtifactCache
from repro.topology.generator import generate_topology

SEEDS = (3, 5, 7, 11, 13, 17, 19, 23)

#: One adversarial layer per matrix column.
VARIANTS = {
    "hijack": {
        "attack": {"n_origin_hijacks": 2, "n_forged_origin_hijacks": 2},
    },
    "leak": {
        "attack": {"n_route_leaks": 3},
        "deployments": [
            {"policy": "leak_prone", "strategy": "random", "fraction": 0.5},
        ],
    },
    "rpki_partial": {
        "attack": {"n_origin_hijacks": 3},
        "deployments": [
            {"policy": "rpki", "strategy": "top_cone", "top_n": 20},
        ],
    },
    "aspa_partial": {
        "attack": {"n_forged_origin_hijacks": 2, "n_route_leaks": 2},
        "deployments": [
            {"policy": "aspa", "strategy": "random", "fraction": 0.4},
        ],
    },
}

# Clean seed-7 small-scenario artifact digests captured before the
# adversarial subsystem landed (PR 6 tree).  The no-attack regression
# below recomputes them from scratch; any drift means honest scenarios
# are no longer byte-stable.
CLEAN_FINGERPRINT = (
    "4612308419b8c9ca425897c7be9c3c388ff81d13e8794eeca764c8f89a0e7046"
)
CLEAN_CACHE_KEY = "14ee6390dead69251d94"
CLEAN_SHA256 = {
    "corpus": "92603a8e8de9c49c12657354de7e22902bfe711cc79c8eb8519d9cfb65d7edf7",
    "asrank": "7c657d28c9e8900a3572caa8f5cc433a6b3c3b021d99b3a81b91b052b0a8a1e3",
    "problink": "1af749ccab5ece9775db63283fef90b8130235e09db6135593b0dc2a385f3997",
    "toposcope": "4dad136af29ab8c322c704ce9130f1bbd7e0dfec1c1658063b92a1b40006c690",
}


def _base_config(seed: int) -> ScenarioConfig:
    """A fast differential scenario: ~140 ASes, no churn."""
    config = ScenarioConfig.small(seed=seed)
    config.topology.n_ases = 140
    config.measurement.n_vantage_points = 25
    config.measurement.n_churn_rounds = 0
    return config


def _corpus_digest(topology, config, setup, cache_root) -> str:
    vps, communities, strippers = setup
    corpus = collect_rounds(
        topology, config, vps, communities, strippers
    )
    cache = ArtifactCache(cache_root)
    path = cache.store_corpus(cache.scenario_key(config), corpus, config)
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("seed", SEEDS)
def test_polluted_corpora_byte_identical_across_engines(
    seed, tmp_path, monkeypatch
):
    clean_config = _base_config(seed)
    topology = generate_topology(clean_config)
    setup = measurement_setup(topology, clean_config)
    digests = {}
    for variant in sorted(VARIANTS):
        config = clean_config.replace(
            adversarial=AdversarialConfig.from_dict(VARIANTS[variant])
        )
        # The matrix is vacuous unless the plan actually fires events.
        assert plan_events(topology, config), (seed, variant)
        for engine in ("vectorized", "legacy"):
            monkeypatch.setenv(ENGINE_ENV, engine)
            digests[(variant, engine)] = _corpus_digest(
                topology, config, setup,
                tmp_path / f"{variant}-{engine}",
            )
        assert (
            digests[(variant, "vectorized")] == digests[(variant, "legacy")]
        ), f"engine mismatch for seed={seed} variant={variant}"
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    clean_digest = _corpus_digest(
        topology, clean_config, setup, tmp_path / "clean"
    )
    polluted = {
        digests[(variant, "vectorized")] for variant in VARIANTS
    }
    assert polluted - {clean_digest}, (
        f"no variant changed the corpus at seed={seed} — pollution "
        "never reached a collector"
    )


def test_clean_seed7_artifacts_unchanged_from_pr6(tmp_path):
    """Honest scenarios are byte-identical to the pre-adversarial tree."""
    scenario = small_scenario(seed=7)
    config = scenario.config
    assert config.adversarial is None
    assert config.fingerprint() == CLEAN_FINGERPRINT
    cache = ArtifactCache(tmp_path)
    key = cache.scenario_key(config)
    assert key == CLEAN_CACHE_KEY
    path = cache.store_corpus(key, scenario.corpus, config)
    assert (
        hashlib.sha256(path.read_bytes()).hexdigest()
        == CLEAN_SHA256["corpus"]
    )
    for algorithm in ("asrank", "problink", "toposcope"):
        rels_path = cache.store_rels(
            key, algorithm, scenario.infer(algorithm), config
        )
        assert (
            hashlib.sha256(rels_path.read_bytes()).hexdigest()
            == CLEAN_SHA256[algorithm]
        ), f"{algorithm} as-rel bytes drifted from the PR 6 baseline"


def test_adversarial_layer_changes_fingerprint_and_cache_key(tmp_path):
    clean = _base_config(3)
    polluted = clean.replace(
        adversarial=AdversarialConfig.from_dict(VARIANTS["hijack"])
    )
    assert clean.fingerprint() != polluted.fingerprint()
    cache = ArtifactCache(tmp_path)
    assert cache.scenario_key(clean) != cache.scenario_key(polluted)
    # Two structurally equal adversarial layers fingerprint identically.
    again = clean.replace(
        adversarial=AdversarialConfig.from_dict(VARIANTS["hijack"])
    )
    assert again.fingerprint() == polluted.fingerprint()
