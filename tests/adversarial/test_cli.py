"""The ``repro attack`` command: parsing, output, and error exits."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_deploy_spec, main

ARGS = ["attack", "--ases", "250", "--vps", "25", "--seed", "11",
        "--churn-rounds", "0"]


class TestDeploySpecs:
    def test_three_strategies(self):
        assert _parse_deploy_spec("rpki:top_cone:25") == {
            "policy": "rpki", "strategy": "top_cone", "top_n": 25,
        }
        assert _parse_deploy_spec("aspa:random:0.4") == {
            "policy": "aspa", "strategy": "random", "fraction": 0.4,
        }
        assert _parse_deploy_spec("leak_prone:explicit:10,30") == {
            "policy": "leak_prone", "strategy": "explicit",
            "ases": [10, 30],
        }

    def test_malformed_specs_rejected(self):
        for spec in ("rpki", "rpki:top_cone", "rpki:top_cone:many",
                     "aspa:random:lots", "rpki:explicit:AS10"):
            with pytest.raises(ValueError, match="--deploy"):
                _parse_deploy_spec(spec)


class TestAttackCommand:
    def test_json_report(self, capsys):
        code = main(ARGS + ["--hijacks", "2", "--leaks", "1",
                            "--deploy", "rpki:top_cone:10", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_events"] == 3
        assert {entry["algorithm"] for entry in payload["algorithms"]} == {
            "asrank", "problink", "toposcope",
        }

    def test_text_report(self, capsys):
        code = main(ARGS + ["--hijacks", "1", "--algorithms", "asrank"])
        assert code == 0
        out = capsys.readouterr().out
        assert "attack plan (1 event(s)):" in out
        assert "hijack_origin" in out
        assert "bias drift:" in out

    def test_no_events_is_a_clean_usage_error(self, capsys):
        code = main(ARGS)
        assert code == 2
        assert "nothing to attack" in capsys.readouterr().err

    def test_invalid_layer_is_a_clean_usage_error(self, capsys):
        code = main(ARGS + ["--hijacks", "1",
                            "--deploy", "bogus:random:0.5"])
        assert code == 2
        assert "unknown policy 'bogus'" in capsys.readouterr().err
