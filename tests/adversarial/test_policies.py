"""The security-policy registry and deployment-mask resolution."""

from __future__ import annotations

import pytest

from repro.adversarial.policies import (
    SecurityPolicy,
    blocked_ases,
    get_policy,
    register_policy,
    registered_policies,
    resolve_deployment,
    resolve_deployments,
)
from repro.config import (
    AdversarialConfig,
    PolicyDeployment,
    SECURITY_POLICY_NAMES,
)


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = [policy.name for policy in registered_policies()]
        assert names == sorted(SECURITY_POLICY_NAMES)

    def test_blocking_semantics(self):
        assert get_policy("gao_rexford").blocks == frozenset()
        assert get_policy("rpki").blocks == {"hijack_origin"}
        assert get_policy("aspa").blocks == {"hijack_forged", "leak"}
        assert get_policy("leak_prone").blocks == frozenset()

    def test_unknown_policy_lookup(self):
        with pytest.raises(KeyError, match="unknown security policy 'bgpsec'"):
            get_policy("bgpsec")

    def test_reregistering_identical_policy_is_idempotent(self):
        register_policy(get_policy("rpki"))

    def test_conflicting_reregistration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(SecurityPolicy(
                name="rpki", blocks=frozenset({"leak"}), description="nope",
            ))

    def test_unknown_attack_kind_rejected_at_definition(self):
        with pytest.raises(ValueError, match="unknown attack kinds"):
            SecurityPolicy(
                name="x", blocks=frozenset({"ddos"}), description="",
            )


class TestDeploymentMasks:
    def test_top_cone_picks_biggest_cones(self, tiny_topology):
        deployment = PolicyDeployment(
            policy="rpki", strategy="top_cone", top_n=2
        )
        mask = resolve_deployment(deployment, tiny_topology, seed=1)
        cones = tiny_topology.graph.customer_cone_sizes()
        threshold = sorted(cones.values(), reverse=True)[1]
        assert len(mask) == 2
        assert all(cones[asn] >= threshold for asn in mask)
        assert mask == tuple(sorted(mask))

    def test_top_cone_ties_break_by_lower_asn(self, tiny_topology):
        all_ases = resolve_deployment(
            PolicyDeployment(policy="rpki", strategy="top_cone", top_n=999),
            tiny_topology, seed=1,
        )
        assert all_ases == tuple(sorted(tiny_topology.graph.asns()))

    def test_random_mask_is_seeded_and_fractional(self, tiny_topology):
        deployment = PolicyDeployment(
            policy="aspa", strategy="random", fraction=0.5
        )
        mask_a = resolve_deployment(deployment, tiny_topology, seed=3)
        mask_b = resolve_deployment(deployment, tiny_topology, seed=3)
        assert mask_a == mask_b
        n = len(tiny_topology.graph.asns())
        assert 0 < len(mask_a) < n
        full = resolve_deployment(
            PolicyDeployment(policy="aspa", strategy="random", fraction=1.0),
            tiny_topology, seed=3,
        )
        assert len(full) == n

    def test_random_masks_differ_across_policies(self, tiny_topology):
        # Each policy draws from its own labelled stream, so two
        # policies with the same fraction do not deploy identically.
        rpki = resolve_deployment(
            PolicyDeployment(policy="rpki", strategy="random", fraction=0.5),
            tiny_topology, seed=3,
        )
        aspa = resolve_deployment(
            PolicyDeployment(policy="aspa", strategy="random", fraction=0.5),
            tiny_topology, seed=3,
        )
        assert rpki != aspa

    def test_explicit_mask(self, tiny_topology):
        deployment = PolicyDeployment(
            policy="leak_prone", strategy="explicit", ases=(40, 10, 30)
        )
        mask = resolve_deployment(deployment, tiny_topology, seed=9)
        assert mask == (10, 30, 40)

    def test_explicit_unknown_as_rejected(self, tiny_topology):
        deployment = PolicyDeployment(
            policy="rpki", strategy="explicit", ases=(10, 99999)
        )
        with pytest.raises(ValueError, match="not in the topology"):
            resolve_deployment(deployment, tiny_topology, seed=9)


class TestBlockedSets:
    def test_blocked_union_respects_policy_blocks(self, tiny_topology):
        layer = AdversarialConfig.from_dict({
            "deployments": [
                {"policy": "rpki", "strategy": "explicit", "ases": [10, 30]},
                {"policy": "aspa", "strategy": "explicit", "ases": [30, 40]},
                {"policy": "leak_prone", "strategy": "explicit", "ases": [50]},
            ],
        })
        deployments = resolve_deployments(layer, tiny_topology, seed=2)
        assert blocked_ases(deployments, "hijack_origin") == {10, 30}
        assert blocked_ases(deployments, "hijack_forged") == {30, 40}
        assert blocked_ases(deployments, "leak") == {30, 40}

    def test_no_deployments_blocks_nothing(self):
        assert blocked_ases({}, "hijack_origin") == set()
