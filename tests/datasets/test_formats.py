"""Tests for the as2org, delegation, and IANA registry file formats."""

import pytest

from repro.datasets.as2org import read_as2org, write_as2org
from repro.datasets.delegation import (
    read_delegation_file,
    region_map_from_files,
    write_delegation_files,
)
from repro.datasets.iana import (
    read_iana_registry,
    region_map_from_registry,
    write_iana_registry,
)
from repro.topology.orgs import Organisation, OrgMap
from repro.topology.regions import Region


class TestAs2Org:
    def _orgs(self):
        orgs = OrgMap()
        orgs.add_org(Organisation("ORG-1", "Big Telco", "US", [174, 701]))
        orgs.add_org(Organisation("ORG-2", "Little ISP", "BR", [28000]))
        return orgs

    def test_round_trip(self, tmp_path):
        path = tmp_path / "as2org.txt"
        write_as2org(self._orgs(), path)
        loaded = read_as2org(path)
        assert loaded.are_siblings(174, 701)
        assert not loaded.are_siblings(174, 28000)
        assert loaded.org("ORG-2").country == "BR"

    def test_pipes_in_names_sanitised(self, tmp_path):
        orgs = OrgMap()
        orgs.add_org(Organisation("ORG-X", "Evil|Pipe", "US", [1]))
        path = tmp_path / "as2org.txt"
        write_as2org(orgs, path)
        loaded = read_as2org(path)
        assert loaded.org("ORG-X").name == "Evil/Pipe"

    def test_record_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("ORG-1|20180401|X|US|SIM\n")
        with pytest.raises(ValueError):
            read_as2org(path)

    def test_scenario_orgs_round_trip(self, scenario, tmp_path):
        path = tmp_path / "as2org.txt"
        write_as2org(scenario.topology.orgs, path)
        loaded = read_as2org(path)
        assert len(loaded) == len(scenario.topology.orgs)
        for a, b in scenario.topology.orgs.sibling_pairs():
            assert loaded.are_siblings(a, b)


class TestDelegation:
    def test_round_trip(self, tmp_path):
        assignments = {174: Region.ARIN, 12000: Region.RIPE, 28000: Region.LACNIC}
        files = write_delegation_files(assignments, tmp_path)
        assert set(files) == set(Region)
        records = read_delegation_file(files[Region.ARIN])
        assert len(records) == 1
        assert records[0].asn == 174
        assert records[0].registry is Region.ARIN

    def test_region_map_from_files(self, tmp_path):
        assignments = {1500: Region.LACNIC}
        files = write_delegation_files(assignments, tmp_path)
        rmap = region_map_from_files(
            iana_blocks=[(1000, 1999, Region.ARIN)],
            delegation_paths=files.values(),
        )
        # The delegation (transfer) must win over the IANA block.
        assert rmap.lookup(1500) is Region.LACNIC
        assert rmap.lookup(1501) is Region.ARIN

    def test_non_asn_records_skipped(self, tmp_path):
        path = tmp_path / "delegated-test"
        path.write_text(
            "2|arin|20180405|1|19700101|20180405|+00:00\n"
            "arin|US|ipv4|8.8.8.0|256|20180405|assigned|x\n"
            "arin|US|asn|394000|2|20180405|assigned|x\n"
        )
        records = read_delegation_file(path)
        assert len(records) == 1
        assert records[0].count == 2

    def test_count_expands_range(self, tmp_path):
        path = tmp_path / "delegated-test"
        path.write_text("lacnic|BR|asn|61000|3|20180405|assigned|x\n")
        rmap = region_map_from_files([], [path])
        for asn in (61000, 61001, 61002):
            assert rmap.lookup(asn) is Region.LACNIC
        assert rmap.lookup(61003) is None

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("arin|US|asn\n")
        with pytest.raises(ValueError):
            read_delegation_file(path)


class TestIanaRegistry:
    def test_round_trip(self, tmp_path):
        blocks = [(1000, 1999, Region.ARIN), (23000, 23455, Region.APNIC)]
        path = tmp_path / "as-numbers.csv"
        write_iana_registry(blocks, path)
        assert read_iana_registry(path) == blocks

    def test_single_asn_block(self, tmp_path):
        path = tmp_path / "as-numbers.csv"
        write_iana_registry([(174, 174, Region.ARIN)], path)
        assert read_iana_registry(path) == [(174, 174, Region.ARIN)]

    def test_unassigned_rows_skipped(self, tmp_path):
        path = tmp_path / "as-numbers.csv"
        path.write_text(
            "Number,Description,WHOIS,Reference,Registration Date\n"
            "23456,AS_TRANS,,,\n"
            "1000-1999,Assigned by ARIN,whois.arin.net,,\n"
        )
        assert read_iana_registry(path) == [(1000, 1999, Region.ARIN)]

    def test_region_map_from_registry(self, tmp_path):
        path = tmp_path / "as-numbers.csv"
        write_iana_registry([(1000, 1999, Region.RIPE)], path)
        rmap = region_map_from_registry(path)
        assert rmap.lookup(1200) is Region.RIPE


class TestScenarioDatasetRoundTrip:
    def test_region_pipeline_reconstructs_mapping(self, scenario, tmp_path):
        """The paper's §5 methodology rebuilt purely from files."""
        topology = scenario.topology
        assignments = {
            node.asn: node.region
            for node in topology.graph.nodes()
            if node.region is not None
        }
        files = write_delegation_files(assignments, tmp_path)
        rebuilt = region_map_from_files(
            iana_blocks=topology.region_map.iana_blocks,
            delegation_paths=files.values(),
        )
        for node in topology.graph.nodes():
            assert rebuilt.lookup(node.asn) is node.region
