"""Tests for the CAIDA serial-1 as-rel format and RelationshipSet."""

import pytest

from repro.datasets.asrel import RelationshipSet, read_asrel, write_asrel
from repro.topology.graph import RelType


@pytest.fixture
def rels():
    r = RelationshipSet()
    r.set_p2c(provider=174, customer=2098)
    r.set_p2p(3356, 1299)
    r.set_s2s(60, 61)
    return r


class TestRelationshipSet:
    def test_lookup_is_undirected(self, rels):
        assert rels.rel_of(174, 2098) is RelType.P2C
        assert rels.rel_of(2098, 174) is RelType.P2C

    def test_provider_direction_preserved(self, rels):
        assert rels.provider_of(2098, 174) == 174
        assert rels.provider_of(3356, 1299) is None

    def test_missing_link(self, rels):
        assert rels.rel_of(1, 2) is None
        assert (1, 2) not in rels

    def test_overwrite(self, rels):
        rels.set_p2p(174, 2098)
        assert rels.rel_of(174, 2098) is RelType.P2P
        assert len(rels) == 3

    def test_counts(self, rels):
        counts = rels.counts()
        assert counts[RelType.P2C] == 1
        assert counts[RelType.P2P] == 1
        assert counts[RelType.S2S] == 1

    def test_customers_map(self, rels):
        rels.set_p2c(provider=174, customer=5511)
        assert sorted(rels.customers_map()[174]) == [2098, 5511]

    def test_copy_is_independent(self, rels):
        clone = rels.copy()
        clone.set_p2p(7, 8)
        assert (7, 8) not in rels

    def test_remove(self, rels):
        rels.remove(174, 2098)
        assert rels.rel_of(174, 2098) is None


class TestFileFormat:
    def test_round_trip(self, rels, tmp_path):
        path = tmp_path / "as-rel.txt"
        write_asrel(rels, path, header_lines=["source: test"])
        loaded = read_asrel(path)
        assert len(loaded) == len(rels)
        assert loaded.rel_of(174, 2098) is RelType.P2C
        assert loaded.provider_of(174, 2098) == 174
        assert loaded.rel_of(3356, 1299) is RelType.P2P
        assert loaded.rel_of(60, 61) is RelType.S2S

    def test_header_written_as_comments(self, rels, tmp_path):
        path = tmp_path / "as-rel.txt"
        write_asrel(rels, path, header_lines=["hello"])
        assert path.read_text().startswith("# hello")

    def test_serial1_codes(self, rels, tmp_path):
        path = tmp_path / "as-rel.txt"
        write_asrel(rels, path)
        body = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert "174|2098|-1" in body
        assert "1299|3356|0" in body

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("174|2098\n")
        with pytest.raises(ValueError):
            read_asrel(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# comment\n\n174|2098|-1\n")
        loaded = read_asrel(path)
        assert len(loaded) == 1
