"""Tests for customer cones and PPDC."""

import pytest

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import (
    customer_cone_sizes,
    ppdc_cones,
    ppdc_sizes,
    recursive_customer_cones,
    stub_transit_split,
)
from repro.datasets.paths import CollectedRoute, PathCorpus


@pytest.fixture
def rels():
    r = RelationshipSet()
    r.set_p2c(provider=1, customer=2)
    r.set_p2c(provider=2, customer=3)
    r.set_p2c(provider=2, customer=4)
    r.set_p2p(1, 5)
    return r


class TestRecursiveCones:
    def test_cones(self, rels):
        cones = recursive_customer_cones(rels)
        assert cones[1] == {2, 3, 4}
        assert cones[2] == {3, 4}
        assert cones[3] == set()
        assert cones[5] == set()

    def test_sizes(self, rels):
        sizes = customer_cone_sizes(rels)
        assert sizes[1] == 3
        assert sizes[4] == 0

    def test_cycle_tolerated(self):
        r = RelationshipSet()
        r.set_p2c(provider=1, customer=2)
        r.set_p2c(provider=2, customer=3)
        r.set_p2c(provider=3, customer=1)  # inferred data can do this
        cones = recursive_customer_cones(r)
        assert cones[1] == {2, 3}
        assert cones[2] == {1, 3}
        assert cones[3] == {1, 2}


class TestStubTransitSplit:
    def test_split(self, rels):
        split = stub_transit_split(rels)
        assert split[1] and split[2]
        assert not split[3] and not split[4] and not split[5]

    def test_universe_extension(self, rels):
        split = stub_transit_split(rels, universe=[1, 99])
        assert split == {1: True, 99: False}


class TestPPDC:
    def _corpus(self):
        corpus = PathCorpus()
        # VP 5 peers with 1: path (5, 1, 2, 3): 1 entered via peer 5,
        # so 2 and 3 are observed in 1's PPDC; 2 entered via provider 1,
        # so 3 lands in 2's PPDC.
        corpus.add_route(CollectedRoute(vp=5, origin=3, path=(5, 1, 2, 3)))
        return corpus

    def test_cones(self, rels):
        cones = ppdc_cones(self._corpus(), rels)
        assert cones[1] == {2, 3}
        assert cones[2] == {3}

    def test_sizes_default_zero(self, rels):
        sizes = ppdc_sizes(self._corpus(), rels)
        assert sizes[1] == 2
        assert sizes[3] == 0
        assert sizes[5] == 0

    def test_ignore_vp_incident(self, rels):
        # Dropping the VP-incident first link removes the observation
        # made through the (5, 1) peering.
        cones = ppdc_cones(self._corpus(), rels, ignore_vp_incident=True)
        assert 1 not in cones
        assert cones[2] == {3}

    def test_requires_rel_knowledge(self, rels):
        # A link with no inferred relationship contributes nothing.
        corpus = PathCorpus()
        corpus.add_route(CollectedRoute(vp=9, origin=3, path=(9, 2, 3)))
        cones = ppdc_cones(corpus, rels)
        assert cones == {}

    def test_consistency_on_scenario(self, scenario):
        rels = scenario.infer("asrank")
        sizes = ppdc_sizes(scenario.corpus, rels)
        no_vp = ppdc_sizes(scenario.corpus, rels, ignore_vp_incident=True)
        assert set(sizes) == set(no_vp)
        # Removing observations can only shrink cones.
        assert all(no_vp[asn] <= sizes[asn] for asn in sizes)
