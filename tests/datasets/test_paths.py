"""Tests for the path corpus and its indices."""

import pytest

from repro.datasets.paths import CollectedRoute, PathCorpus, filter_by_vps


def _route(path, communities=()):
    return CollectedRoute(
        vp=path[0], origin=path[-1], path=tuple(path), communities=tuple(communities)
    )


@pytest.fixture
def corpus():
    c = PathCorpus()
    c.add_route(_route((1, 2, 3)))
    c.add_route(_route((1, 2, 4)))
    c.add_route(_route((5, 2, 3), communities=((5, 100),)))
    c.add_route(_route((5, 6)))
    return c


class TestIndexing:
    def test_visible_links(self, corpus):
        assert corpus.visible_links() == [(1, 2), (2, 3), (2, 4), (2, 5), (5, 6)]

    def test_link_visibility(self, corpus):
        assert corpus.link_visibility((2, 3)) == 2  # VPs 1 and 5
        assert corpus.link_visibility((2, 4)) == 1
        assert corpus.link_visibility((9, 10)) == 0

    def test_triplets(self, corpus):
        assert corpus.has_triplet(1, 2, 3)
        assert corpus.has_triplet(5, 2, 3)
        assert not corpus.has_triplet(3, 2, 1)  # direction matters

    def test_transit_degree(self, corpus):
        # 2 transits for {1, 3, 4, 5}.
        assert corpus.transit_degree(2) == 4
        assert corpus.transit_degree(1) == 0
        assert corpus.transit_degrees()[2] == 4

    def test_node_degree(self, corpus):
        assert corpus.node_degree(2) == 4
        assert corpus.node_degree(6) == 1

    def test_left_right_of_link(self, corpus):
        assert corpus.ases_left_of((2, 3)) == frozenset({1, 5})
        assert corpus.ases_right_of((1, 2)) == frozenset({3, 4})
        assert corpus.ases_right_of((2, 3)) == frozenset()

    def test_origins_via(self, corpus):
        assert corpus.origins_via((1, 2)) == frozenset({3, 4})

    def test_vantage_points(self, corpus):
        assert corpus.vantage_points == frozenset({1, 5})

    def test_communities_preserved(self, corpus):
        with_comms = list(corpus.routes_with_communities())
        assert len(with_comms) == 1
        assert with_comms[0].communities == ((5, 100),)

    def test_stats(self, corpus):
        stats = corpus.stats()
        assert stats["n_routes"] == 4
        assert stats["n_visible_links"] == 5
        assert stats["n_routes_with_communities"] == 1


class TestValidation:
    def test_path_endpoint_mismatch_rejected(self):
        corpus = PathCorpus()
        with pytest.raises(ValueError):
            corpus.add_route(CollectedRoute(vp=9, origin=3, path=(1, 2, 3)))

    def test_empty_path_rejected(self):
        corpus = PathCorpus()
        with pytest.raises(ValueError):
            corpus.add_route(CollectedRoute(vp=1, origin=1, path=()))

    def test_duplicate_path_deduplicated(self, corpus):
        before = len(corpus)
        assert corpus.add_route(_route((1, 2, 3))) is False
        assert len(corpus) == before

    def test_single_as_path_allowed(self):
        corpus = PathCorpus()
        assert corpus.add_route(_route((7,))) is True
        assert corpus.visible_links() == []


class TestFilterByVps:
    def test_filters(self, corpus):
        sub = filter_by_vps(corpus, {1})
        assert len(sub) == 2
        assert sub.vantage_points == frozenset({1})
        assert (5, 6) not in set(sub.visible_links())

    def test_empty_filter(self, corpus):
        sub = filter_by_vps(corpus, set())
        assert len(sub) == 0

    def test_route_links_iterator(self):
        route = _route((4, 2, 3))
        assert list(route.links()) == [(2, 4), (2, 3)]
