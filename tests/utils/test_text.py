"""Tests for text rendering helpers."""

import numpy as np
import pytest

from repro.utils.text import format_table, render_bars, render_heatmap


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 5 for line in lines)

    def test_title(self):
        out = format_table(["c"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_cells_stringified(self):
        out = format_table(["n"], [[42]])
        assert "42" in out


class TestRenderBars:
    def test_scales_to_max(self):
        out = render_bars(["big", "half"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "#" not in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0], width=0)

    def test_value_format(self):
        out = render_bars(["a"], [0.123456], value_format="{:.3f}")
        assert "0.123" in out


class TestRenderHeatmap:
    def test_row_zero_drawn_last(self):
        grid = np.zeros((2, 2))
        grid[0, 0] = 1.0  # smallest-y row -> bottom line
        out = render_heatmap(grid)
        lines = out.splitlines()
        assert lines[-1][0] != " "
        assert lines[0].strip() == ""

    def test_title_and_labels(self):
        grid = np.ones((2, 2))
        out = render_heatmap(
            grid, x_labels=["lo", "hi"], y_labels=["s", "l"], title="T"
        )
        assert out.splitlines()[0] == "T"
        assert "lo" in out

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(4))

    def test_all_zero_grid(self):
        out = render_heatmap(np.zeros((3, 3)))
        assert set(out.replace("\n", "")) <= {" "}
