"""Tests for the benchmark report writer (BENCH_substrate.json)."""

import json

from repro.utils.benchreport import (
    BENCH_SCHEMA_VERSION,
    load_bench_report,
    merge_bench_report,
)


def test_fresh_report_written_with_schema(tmp_path):
    path = tmp_path / "BENCH_substrate.json"
    report = merge_bench_report(
        str(path), {"corpus_indexing": {"median_seconds": 0.05}}
    )
    assert report["schema"] == BENCH_SCHEMA_VERSION
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert on_disk == report
    assert on_disk["benchmarks"]["corpus_indexing"]["median_seconds"] == 0.05
    # The file ends with a newline and is byte-stable across rewrites.
    first = path.read_bytes()
    merge_bench_report(
        str(path), {"corpus_indexing": {"median_seconds": 0.05}}
    )
    assert path.read_bytes() == first
    assert first.endswith(b"\n")


def test_partial_runs_merge_instead_of_clobbering(tmp_path):
    path = tmp_path / "BENCH_substrate.json"
    merge_bench_report(str(path), {"a": {"median_seconds": 1.0}})
    merge_bench_report(
        str(path),
        {"b": {"median_seconds": 2.0}},
        extra={"corpus": {"total_bytes": 123}},
    )
    report = load_bench_report(str(path))
    assert set(report["benchmarks"]) == {"a", "b"}
    assert report["corpus"] == {"total_bytes": 123}
    # Re-recording a benchmark replaces only its own entry.
    merge_bench_report(str(path), {"a": {"median_seconds": 0.5}})
    report = load_bench_report(str(path))
    assert report["benchmarks"]["a"]["median_seconds"] == 0.5
    assert report["benchmarks"]["b"]["median_seconds"] == 2.0


def test_corrupt_or_foreign_file_treated_as_absent(tmp_path):
    path = tmp_path / "BENCH_substrate.json"
    path.write_text("{not json", encoding="utf-8")
    report = merge_bench_report(str(path), {"a": {"median_seconds": 1.0}})
    assert report["benchmarks"] == {"a": {"median_seconds": 1.0}}
    path.write_text(json.dumps(["wrong", "shape"]), encoding="utf-8")
    assert load_bench_report(str(path))["benchmarks"] == {}


def test_missing_output_directory_is_created(tmp_path):
    path = tmp_path / "nested" / "dir" / "BENCH_substrate.json"
    merge_bench_report(str(path), {"a": {"median_seconds": 1.0}})
    assert path.is_file()
