"""Tests for the capped 2-D histogram binning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.binning import BinSpec, Histogram2D


class TestBinSpec:
    def test_regular_bins(self):
        spec = BinSpec(cap=100, n_bins=10)
        assert spec.index(0) == 0
        assert spec.index(9.99) == 0
        assert spec.index(10) == 1
        assert spec.index(99.9) == 9

    def test_catch_all_bin(self):
        spec = BinSpec(cap=100, n_bins=10)
        assert spec.index(100) == 10
        assert spec.index(10**9) == 10
        assert spec.total_bins == 11

    def test_paper_caps(self):
        # "the row above 150 and the column to the right of 1500 catch
        # all transit degrees equal or larger" (footnote 7).
        x = BinSpec(cap=1500, n_bins=10)
        y = BinSpec(cap=150, n_bins=10)
        assert x.index(1500) == 10
        assert x.index(1499) == 9
        assert y.index(150) == 10

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BinSpec(cap=10, n_bins=2).index(-1)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            BinSpec(cap=0, n_bins=5)
        with pytest.raises(ValueError):
            BinSpec(cap=10, n_bins=0)

    def test_edges_and_labels(self):
        spec = BinSpec(cap=30, n_bins=3)
        assert spec.edges() == [0.0, 10.0, 20.0, 30.0]
        labels = spec.labels()
        assert labels[0] == "[0,10)"
        assert labels[-1] == ">=30"

    @given(st.floats(min_value=0, max_value=10**6, allow_nan=False))
    def test_index_in_range(self, value):
        spec = BinSpec(cap=150, n_bins=10)
        assert 0 <= spec.index(value) <= 10


class TestHistogram2D:
    def _make(self):
        return Histogram2D(BinSpec(cap=100, n_bins=10), BinSpec(cap=50, n_bins=10))

    def test_add_orders_larger_on_x(self):
        hist = self._make()
        hist.add(5, 95)  # smaller=5 (y), larger=95 (x)
        assert hist.counts[1, 9] == 1
        hist.add(95, 5)  # argument order must not matter
        assert hist.counts[1, 9] == 2

    def test_fractions_sum_to_one(self):
        hist = self._make()
        hist.add_many([(1, 2), (30, 40), (200, 300)])
        assert hist.total == 3
        assert hist.fractions().sum() == pytest.approx(1.0)

    def test_empty_fractions_are_zero(self):
        hist = self._make()
        assert hist.fractions().sum() == 0.0
        assert hist.total == 0

    def test_mass_below_bottom_left(self):
        hist = self._make()
        hist.add(1, 1)      # bottom-left
        hist.add(999, 999)  # catch-all corner
        assert hist.mass_below(0.2, 0.2) == pytest.approx(0.5)

    def test_mass_below_validates_fractions(self):
        hist = self._make()
        with pytest.raises(ValueError):
            hist.mass_below(0.0, 0.5)
        with pytest.raises(ValueError):
            hist.mass_below(0.5, 1.5)

    def test_distance_zero_for_identical(self):
        a, b = self._make(), self._make()
        for pair in [(1, 2), (10, 60), (45, 45)]:
            a.add(*pair)
            b.add(*pair)
        assert a.earth_mover_distance_1d(b) == pytest.approx(0.0)

    def test_distance_positive_for_different(self):
        a, b = self._make(), self._make()
        a.add(1, 1)
        b.add(500, 500)
        assert a.earth_mover_distance_1d(b) > 0

    def test_distance_shape_mismatch_rejected(self):
        a = self._make()
        b = Histogram2D(BinSpec(cap=100, n_bins=5), BinSpec(cap=50, n_bins=5))
        with pytest.raises(ValueError):
            a.earth_mover_distance_1d(b)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),
                st.integers(min_value=0, max_value=2000),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_total_matches_adds(self, pairs):
        hist = self._make()
        hist.add_many(pairs)
        assert hist.total == len(pairs)
        assert hist.fractions().sum() == pytest.approx(1.0)
