"""Tests for the deterministic RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import child_rng, make_rng, weighted_choice


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1_000_000) == b.integers(0, 1_000_000)

    def test_different_seeds_diverge(self):
        a = make_rng(1)
        b = make_rng(2)
        draws_a = [int(a.integers(0, 10**9)) for _ in range(8)]
        draws_b = [int(b.integers(0, 10**9)) for _ in range(8)]
        assert draws_a != draws_b

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            make_rng(-1)


class TestChildRng:
    def test_label_independence(self):
        a = child_rng(7, "topology.links")
        b = child_rng(7, "validation.rpsl")
        assert [int(a.integers(0, 10**9)) for _ in range(4)] != [
            int(b.integers(0, 10**9)) for _ in range(4)
        ]

    def test_label_stability(self):
        a = child_rng(7, "x")
        b = child_rng(7, "x")
        assert int(a.integers(0, 10**9)) == int(b.integers(0, 10**9))

    def test_seed_changes_stream(self):
        a = child_rng(7, "x")
        b = child_rng(8, "x")
        assert [int(a.integers(0, 10**9)) for _ in range(4)] != [
            int(b.integers(0, 10**9)) for _ in range(4)
        ]


class TestWeightedChoice:
    def test_single_item(self):
        rng = make_rng(0)
        assert weighted_choice(rng, ["only"]) == "only"

    def test_zero_weight_never_chosen(self):
        rng = make_rng(0)
        for _ in range(50):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [1.0, -1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0.0, 0.0])

    @given(st.integers(min_value=0, max_value=10**6))
    def test_choice_is_member(self, seed):
        rng = make_rng(seed)
        items = ["a", "b", "c"]
        assert weighted_choice(rng, items, [1, 2, 3]) in items

    def test_distribution_roughly_follows_weights(self):
        rng = make_rng(3)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert 0.65 < counts["a"] / 4000 < 0.85
