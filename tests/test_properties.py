"""Property-based tests over the core data structures and invariants.

These use hypothesis to explore random relationship sets, validation
data, and small random topologies, checking the invariants the rest of
the pipeline silently assumes.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.metrics import confusion_for_links
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import compute_route_tree
from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role, link_key
from repro.topology.regions import Region
from repro.validation.cleaning import CleanedValidation, CleaningReport

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

asns = st.integers(min_value=1, max_value=500)


@st.composite
def rel_entries(draw):
    a = draw(asns)
    b = draw(asns.filter(lambda x: True))
    if a == b:
        b = a + 1
    rel = draw(st.sampled_from([RelType.P2C, RelType.P2P]))
    return (a, b, rel)


@st.composite
def random_hierarchy(draw):
    """A random acyclic provider hierarchy with optional peering.

    ASes are numbered 1..n; providers always have a smaller number, so
    the customer graph is acyclic by construction.
    """
    n = draw(st.integers(min_value=3, max_value=20))
    graph = ASGraph()
    for asn in range(1, n + 1):
        role = Role.CLIQUE if asn <= 2 else Role.STUB
        graph.add_as(ASNode(asn=asn, region=Region.ARIN, role=role))
    if not graph.has_link(1, 2):
        graph.add_link(Link(provider=1, customer=2, rel=RelType.P2P))
    for asn in range(3, n + 1):
        n_providers = draw(st.integers(min_value=1, max_value=2))
        chosen = draw(
            st.lists(
                st.integers(min_value=1, max_value=asn - 1),
                min_size=n_providers,
                max_size=n_providers,
                unique=True,
            )
        )
        for provider in chosen:
            if not graph.has_link(provider, asn):
                graph.add_link(Link(provider=provider, customer=asn, rel=RelType.P2C))
    # a little peering among mid ASes
    n_peers = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_peers):
        a = draw(st.integers(min_value=3, max_value=n))
        b = draw(st.integers(min_value=3, max_value=n))
        if a != b and not graph.has_link(a, b):
            lo, hi = link_key(a, b)
            graph.add_link(Link(provider=lo, customer=hi, rel=RelType.P2P))
    return graph


# ---------------------------------------------------------------------------
# RelationshipSet round trips
# ---------------------------------------------------------------------------

class TestRelationshipSetProperties:
    @given(st.lists(rel_entries(), min_size=0, max_size=60))
    def test_last_write_wins_and_undirected(self, entries):
        rels = RelationshipSet()
        expected = {}
        for a, b, rel in entries:
            if rel is RelType.P2C:
                rels.set_p2c(provider=a, customer=b)
            else:
                rels.set_p2p(a, b)
            expected[link_key(a, b)] = rel
        assert len(rels) == len(expected)
        for key, rel in expected.items():
            assert rels.rel_of(*key) is rel
            assert rels.rel_of(key[1], key[0]) is rel

    @given(entries=st.lists(rel_entries(), min_size=1, max_size=40))
    def test_file_round_trip(self, tmp_path_factory, entries):
        from repro.datasets.asrel import read_asrel, write_asrel

        rels = RelationshipSet()
        for a, b, rel in entries:
            if rel is RelType.P2C:
                rels.set_p2c(provider=a, customer=b)
            else:
                rels.set_p2p(a, b)
        path = tmp_path_factory.mktemp("asrel") / "rels.txt"
        write_asrel(rels, path)
        loaded = read_asrel(path)
        assert sorted(loaded.items()) == sorted(rels.items())


# ---------------------------------------------------------------------------
# propagation invariants on random hierarchies
# ---------------------------------------------------------------------------

class TestPropagationProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(random_hierarchy(), st.integers(min_value=1, max_value=20))
    def test_routes_are_loop_free_and_policy_consistent(self, graph, origin_pick):
        origin = graph.asns()[origin_pick % len(graph)]
        adjacency = AdjacencyIndex(graph)
        tree = compute_route_tree(adjacency, origin)
        for asn in graph.asns():
            path = tree.path_from(asn)
            if path is None:
                continue
            # loop-free
            assert len(set(path)) == len(path)
            # ends at the origin
            assert path[-1] == origin
            # the recorded class matches the first link's relationship
            if len(path) > 1:
                assert tree.pref[asn] is adjacency.route_class(asn, path[1])

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(random_hierarchy())
    def test_full_reachability_without_partial_transit(self, graph):
        """With no partial-transit links and a connected hierarchy,
        every AS must have a route to every origin."""
        adjacency = AdjacencyIndex(graph)
        for origin in graph.asns():
            tree = compute_route_tree(adjacency, origin)
            for asn in graph.asns():
                assert tree.has_route(asn)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_hierarchy())
    def test_valley_free(self, graph):
        adjacency = AdjacencyIndex(graph)
        for origin in graph.asns()[:5]:
            tree = compute_route_tree(adjacency, origin)
            for asn in graph.asns():
                path = tree.path_from(asn)
                if path is None or len(path) < 3:
                    continue
                # Once the path (read from the collector side) crosses a
                # non-P2C link or starts descending, it must descend.
                descending = False
                flats = 0
                for left, right in zip(path, path[1:]):
                    link = graph.link(left, right)
                    if link.rel is RelType.P2C and link.provider == left:
                        descending = True
                    elif link.rel is RelType.P2C:
                        assert not descending, f"valley in {path}"
                    else:
                        flats += 1
                        assert not descending, f"peer after descent in {path}"
                assert flats <= 1


# ---------------------------------------------------------------------------
# metric invariants
# ---------------------------------------------------------------------------

class TestMetricProperties:
    @given(st.lists(rel_entries(), min_size=1, max_size=50), st.data())
    def test_confusion_totals(self, entries, data):
        inferred = RelationshipSet()
        rels = {}
        for a, b, rel in entries:
            key = link_key(a, b)
            truth = data.draw(st.sampled_from([RelType.P2C, RelType.P2P]))
            provider = key[0] if truth is RelType.P2C else None
            rels[key] = (truth, provider)
            if rel is RelType.P2C:
                inferred.set_p2c(provider=key[0], customer=key[1])
            else:
                inferred.set_p2p(*key)
        validation = CleanedValidation(rels=rels, report=CleaningReport())
        links = list(rels)
        conf = confusion_for_links(links, inferred, validation, RelType.P2P)
        assert conf.total == len(links)
        flipped = confusion_for_links(links, inferred, validation, RelType.P2C)
        assert flipped.tp == conf.tn and flipped.fp == conf.fn
        assert conf.mcc() == pytest.approx(flipped.mcc())
