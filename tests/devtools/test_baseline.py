"""Baseline round-trip, multiplicity, staleness, byte-stable writes."""

from pathlib import Path

from repro.devtools import Baseline, LintConfig, run_lint
from repro.devtools.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(rule="DET002", path="pkg/mod.py", line=3, message="boom"):
    return Finding(path=path, line=line, col=1, rule_id=rule,
                   message=message)


def test_round_trip_through_disk(tmp_path):
    baseline = Baseline.from_findings([_finding(), _finding(line=9)])
    target = tmp_path / "lint-baseline.json"
    baseline.dump(target)
    loaded = Baseline.load(target)
    assert loaded.counts == baseline.counts
    assert len(loaded) == 2


def test_dump_is_byte_stable(tmp_path):
    baseline = Baseline.from_findings(
        [_finding(), _finding(rule="DET001"), _finding(path="a.py")]
    )
    first = tmp_path / "one.json"
    second = tmp_path / "two.json"
    baseline.dump(first)
    Baseline.load(first).dump(second)
    assert first.read_bytes() == second.read_bytes()


def test_split_matches_without_line_numbers():
    baseline = Baseline.from_findings([_finding(line=3)])
    # Same finding after an edit moved it: still baselined.
    new, baselined, stale = baseline.split([_finding(line=40)])
    assert new == []
    assert len(baselined) == 1
    assert stale == []


def test_split_is_multiplicity_aware():
    baseline = Baseline.from_findings([_finding()])
    duplicated = [_finding(line=3), _finding(line=30)]
    new, baselined, stale = baseline.split(duplicated)
    assert len(baselined) == 1
    assert len(new) == 1  # the second identical finding is NOT grandfathered


def test_stale_entries_are_reported():
    baseline = Baseline.from_findings([_finding(), _finding(rule="DET001")])
    new, baselined, stale = baseline.split([_finding()])
    assert new == []
    assert len(baselined) == 1
    assert [entry["rule"] for entry in stale] == ["DET001"]


def test_missing_baseline_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "does-not-exist.json")
    assert len(baseline) == 0


def test_baselined_fixture_run_reports_clean():
    config = LintConfig(select=["DET002"])
    bad = FIXTURES / "det002_bad.py"
    first = run_lint([bad], config)
    assert len(first.findings) == 3
    baseline = Baseline.from_findings(first.findings)
    second = run_lint([bad], config, baseline=baseline)
    assert second.ok
    assert len(second.baselined) == 3
    assert second.stale_baseline == []
