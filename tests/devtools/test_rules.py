"""Fixture-driven positive/negative coverage for every rule."""

import pytest

from repro.devtools import LintConfig, run_lint
from repro.devtools.registry import all_rules

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (bad fixture, expected finding count, ok fixture)
CASES = {
    "DET001": ("det001_bad.py", 4, "det001_ok.py"),
    "DET002": ("det002_bad.py", 3, "det002_ok.py"),
    "DET003": ("det003_bad.py", 3, "det003_ok.py"),
    "ASYNC001": ("async001_bad.py", 3, "async001_ok.py"),
    "ASYNC002": ("async002_bad.py", 1, "async002_ok.py"),
    "PICKLE001": ("pickle001_bad.py", 2, "pickle001_ok.py"),
    "DEP001": ("dep001_bad.py", 2, "dep001_ok.py"),
    "API001": ("api001_bad.py", 2, "api001_ok.py"),
}


def lint_one(filename, rule_id):
    config = LintConfig(select=[rule_id])
    result = run_lint([FIXTURES / filename], config)
    return result.findings


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_triggers_rule(rule_id):
    bad, expected_count, _ = CASES[rule_id]
    findings = lint_one(bad, rule_id)
    assert [f.rule_id for f in findings] == [rule_id] * expected_count
    # Locations must be real: inside the file, 1-based.
    for finding in findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.path.endswith(bad)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_ok_fixture_is_clean(rule_id):
    _, _, ok = CASES[rule_id]
    assert lint_one(ok, rule_id) == []


def test_every_registered_rule_has_a_fixture_case():
    # Program-scope rules (FLOW/PERF/CONC) are covered by the package
    # fixtures in test_program_rules.py — this table holds the
    # single-file, module-scope rules.
    module_scope = [rule_id for rule_id, rule_cls in all_rules().items()
                    if rule_cls.scope == "module"]
    assert sorted(module_scope) == sorted(CASES)


def test_fixture_tree_trips_every_rule_at_once():
    """The acceptance scenario: one lint run over the whole fixture
    tree must exit non-zero with every rule represented."""
    result = run_lint([FIXTURES], LintConfig())
    assert not result.ok
    seen = {finding.rule_id for finding in result.findings}
    assert set(CASES) <= seen


def test_findings_are_sorted_and_deterministic():
    first = run_lint([FIXTURES], LintConfig())
    second = run_lint([FIXTURES], LintConfig())
    assert first.findings == second.findings
    assert first.findings == sorted(first.findings)


def test_det001_exemption_path_is_configurable(tmp_path):
    source = "import random\n"
    exempt = tmp_path / "rng.py"
    exempt.write_text(source, encoding="utf-8")
    strict = run_lint([exempt], LintConfig(select=["DET001"]))
    assert len(strict.findings) == 1
    lax = run_lint(
        [exempt],
        LintConfig(select=["DET001"], det001_exempt=("rng.py",)),
    )
    assert lax.findings == []


def test_dep001_extra_allowed_imports(tmp_path):
    target = tmp_path / "uses_requests.py"
    target.write_text("import requests\n", encoding="utf-8")
    strict = run_lint([target], LintConfig(select=["DEP001"]))
    assert len(strict.findings) == 1
    lax = run_lint(
        [target],
        LintConfig(select=["DEP001"], extra_allowed_imports=("requests",)),
    )
    assert lax.findings == []


def test_dep001_dotted_allowlist_entries(tmp_path):
    """A dotted entry admits exactly one subtree, not its siblings."""
    target = tmp_path / "uses_submodule.py"
    target.write_text(
        "from scipy.sparse import csr_matrix\n"
        "from scipy.stats import norm\n"
        "import scipy.sparse.linalg\n",
        encoding="utf-8",
    )
    strict = run_lint([target], LintConfig(select=["DEP001"]))
    assert len(strict.findings) == 3
    lax = run_lint(
        [target],
        LintConfig(
            select=["DEP001"], extra_allowed_imports=("scipy.sparse",)
        ),
    )
    # scipy.sparse and anything below it pass; scipy.stats still fails.
    assert [f.rule_id for f in lax.findings] == ["DEP001"]
    assert "scipy.stats" in lax.findings[0].message


def test_dep001_numpy_lib_format_declared(tmp_path):
    """The default config admits numpy.lib.format (cache artifacts)."""
    target = tmp_path / "uses_npy_format.py"
    target.write_text(
        "from numpy.lib.format import open_memmap\n", encoding="utf-8"
    )
    assert run_lint([target], LintConfig(select=["DEP001"])).findings == []


def test_syntax_error_reported_as_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    result = run_lint([broken], LintConfig())
    assert [f.rule_id for f in result.findings] == ["SYN001"]


def test_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="unknown rule id"):
        run_lint([FIXTURES], LintConfig(select=["NOPE001"]))
