"""noqa parsing, suppression accounting, unused-marker detection."""

from pathlib import Path

from repro.devtools import LintConfig, run_lint
from repro.devtools.suppressions import (
    UNUSED_SUPPRESSION_ID,
    SuppressionIndex,
)

FIXTURES = Path(__file__).parent / "fixtures"


def test_bare_noqa_suppresses_everything():
    index = SuppressionIndex.from_source("x = 1  # repro: noqa\n")
    assert index.suppresses(1, "DET001")
    assert index.suppresses(1, "ASYNC002")
    assert index.unused() == []


def test_scoped_noqa_suppresses_only_named_rules():
    index = SuppressionIndex.from_source(
        "x = 1  # repro: noqa[DET001,ASYNC001]\n"
    )
    assert index.suppresses(1, "DET001")
    assert index.suppresses(1, "ASYNC001")
    assert not index.suppresses(1, "DET002")
    assert not index.suppresses(2, "DET001")


def test_sup001_is_never_suppressable():
    index = SuppressionIndex.from_source("x = 1  # repro: noqa\n")
    assert not index.suppresses(1, UNUSED_SUPPRESSION_ID)


def test_marker_inside_string_is_not_a_suppression():
    index = SuppressionIndex.from_source(
        's = "text with # repro: noqa inside"\n'
    )
    assert not index.suppresses(1, "DET001")


def test_mixed_fixture_used_and_unused_markers():
    result = run_lint(
        [FIXTURES / "suppression_mixed.py"],
        LintConfig(select=["DET002"]),
    )
    # The DET002 finding is absorbed; the stale marker surfaces.
    assert [f.rule_id for f in result.findings] == [UNUSED_SUPPRESSION_ID]
    assert result.suppressed == 1
    assert "matches no finding" in result.findings[0].message


def test_unused_marker_reports_line_of_the_comment(tmp_path):
    target = tmp_path / "stale.py"
    target.write_text(
        "VALUE = 1\n"
        "OTHER = 2  # repro: noqa[DET001]\n",
        encoding="utf-8",
    )
    result = run_lint([target], LintConfig())
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.rule_id == UNUSED_SUPPRESSION_ID
    assert finding.line == 2


def test_case_insensitive_rule_ids_in_marker(tmp_path):
    target = tmp_path / "lower.py"
    target.write_text(
        "import json\n"
        "def emit(v):\n"
        "    return json.dumps(set(v))  # repro: noqa[det002]\n",
        encoding="utf-8",
    )
    result = run_lint([target], LintConfig(select=["DET002"]))
    assert result.findings == []
    assert result.suppressed == 1
