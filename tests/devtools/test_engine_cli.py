"""Engine/CLI integration: exit codes, formats, baseline workflow, and
the self-check that the repo's own source is contract-clean."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.devtools import LintConfig, run_lint
from repro.devtools.cli import main as lint_main

REPO_ROOT = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
SRC = REPO_ROOT / "src" / "repro"


# ---------------------------------------------------------------------------
# the self-check: the linter accepts the codebase it polices
# ---------------------------------------------------------------------------

def test_repo_source_is_clean_with_empty_baseline():
    result = run_lint([SRC], LintConfig())
    assert result.findings == [], [
        f"{f.location()} {f.rule_id} {f.message}" for f in result.findings
    ]
    assert result.files_checked > 80  # the whole package was actually seen


def test_service_layer_satisfies_async_contracts():
    """Satellite check: the event-loop layer (`repro.service`) carries
    no blocking calls in coroutines and no fire-and-forget tasks —
    the blocking work all sits behind the pool's executor."""
    result = run_lint(
        [SRC / "service"],
        LintConfig(select=["ASYNC001", "ASYNC002"]),
    )
    assert result.findings == []
    assert result.files_checked >= 7


def test_export_layer_satisfies_ordering_contract():
    """Satellite check: the serialisers feeding bundles and the query
    service (`repro.analysis.export`, `repro.datasets`) never let
    set/dict-view ordering reach an output sink."""
    result = run_lint(
        [SRC / "analysis", SRC / "datasets"],
        LintConfig(select=["DET002"]),
    )
    assert result.findings == []


def test_committed_baseline_is_empty_and_current():
    baseline_path = REPO_ROOT / "lint-baseline.json"
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert document["entries"] == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_exits_nonzero_on_fixture_tree(capsys):
    code = repro_main(["lint", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    for rule_id in ("DET001", "DET002", "DET003", "ASYNC001", "ASYNC002",
                    "PICKLE001", "DEP001", "API001"):
        assert rule_id in out


def test_cli_exits_zero_on_clean_tree(capsys):
    code = repro_main(["lint", str(SRC)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_json_format_is_parseable_and_sorted(capsys):
    code = repro_main(["lint", "--format", "json", str(FIXTURES)])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["counts"]["findings"] == len(document["findings"])
    locations = [
        (f["path"], f["line"], f["col"], f["rule"])
        for f in document["findings"]
    ]
    assert locations == sorted(locations)


def test_cli_select_restricts_rules(capsys):
    code = repro_main(["lint", "--select", "DEP001", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    rule_ids = {
        line.split()[1] for line in out.splitlines()
        if line and ":" in line.split()[0]
    }
    assert rule_ids == {"DEP001"}


def test_cli_missing_path_is_a_usage_error(capsys):
    code = repro_main(["lint", "no/such/path.py"])
    err = capsys.readouterr().err
    assert code == 2
    assert "no such file" in err


def test_cli_unknown_rule_is_a_usage_error(capsys):
    code = repro_main(["lint", "--select", "BOGUS9", str(FIXTURES)])
    assert code == 2


def test_cli_explain_and_list_rules(capsys):
    assert repro_main(["lint", "--explain", "det002"]) == 0
    out = capsys.readouterr().out
    assert "DET002" in out and "sorted" in out
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "PICKLE001" in out


def test_standalone_entry_point_matches_subcommand(capsys):
    code = lint_main([str(FIXTURES / "dep001_ok.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


# ---------------------------------------------------------------------------
# baseline workflow end to end
# ---------------------------------------------------------------------------

def test_write_baseline_then_lint_is_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "legacy.py"
    bad.write_text("import random\n", encoding="utf-8")

    assert repro_main(["lint", "legacy.py"]) == 1
    capsys.readouterr()

    assert repro_main(["lint", "--write-baseline", "legacy.py"]) == 0
    capsys.readouterr()
    assert (tmp_path / "lint-baseline.json").exists()

    # Grandfathered: the same finding no longer fails the gate ...
    assert repro_main(["lint", "legacy.py"]) == 0
    capsys.readouterr()

    # ... but a NEW finding still does.
    bad.write_text("import random\nfrom random import choice\n",
                   encoding="utf-8")
    assert repro_main(["lint", "legacy.py"]) == 1


def test_write_baseline_is_idempotent(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "legacy.py").write_text(
        "import requests\nimport random\n", encoding="utf-8"
    )
    assert repro_main(["lint", "--write-baseline", "legacy.py"]) == 0
    first = (tmp_path / "lint-baseline.json").read_bytes()
    assert repro_main(["lint", "--write-baseline", "legacy.py"]) == 0
    second = (tmp_path / "lint-baseline.json").read_bytes()
    capsys.readouterr()
    assert first == second


def test_stale_baseline_entries_surface_but_do_not_fail(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "legacy.py"
    target.write_text("import random\n", encoding="utf-8")
    assert repro_main(["lint", "--write-baseline", "legacy.py"]) == 0
    capsys.readouterr()

    target.write_text("VALUE = 1\n", encoding="utf-8")  # debt paid off
    code = repro_main(["lint", "legacy.py"])
    out = capsys.readouterr().out
    assert code == 0
    assert "stale baseline" in out


# ---------------------------------------------------------------------------
# whole-program mode and hardened path handling
# ---------------------------------------------------------------------------

def test_cli_whole_program_repo_is_clean(capsys, tmp_path):
    code = repro_main(["lint", "--whole-program",
                       "--analysis-cache", str(tmp_path / "c"),
                       str(SRC)])
    out = capsys.readouterr().out
    assert code == 0
    assert "whole-program:" in out

    # The warm re-run hits the cache for every module.
    code = repro_main(["lint", "--whole-program", "--format", "json",
                       "--analysis-cache", str(tmp_path / "c"),
                       str(SRC)])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["findings"] == []
    assert document["analysis"]["hits"] == document["analysis"]["modules"]


def test_cli_call_graph_dump(capsys):
    code = repro_main(["lint", "--no-analysis-cache",
                       "--call-graph", "repro.bgp",
                       str(SRC / "bgp")])
    captured = capsys.readouterr()
    assert code == 0
    assert "->" in captured.out
    assert all(line.startswith("repro.bgp")
               for line in captured.out.splitlines() if line)


def test_cli_default_paths_cover_benchmarks_and_examples(
    capsys, monkeypatch
):
    monkeypatch.chdir(REPO_ROOT)
    code = repro_main(["lint"])
    out = capsys.readouterr().out
    assert code == 0
    n_files = int(out.rsplit(" in ", 1)[1].split()[0])
    src_only = run_lint([SRC], LintConfig()).files_checked
    assert n_files > src_only  # benchmarks/ and examples/ were included


def test_cli_undecodable_file_is_a_usage_error(tmp_path, capsys):
    target = tmp_path / "binary.py"
    target.write_bytes(b"\xff\xfe\x00junk")
    code = repro_main(["lint", str(target)])
    err = capsys.readouterr().err
    assert code == 2
    assert "repro lint:" in err
    assert "Traceback" not in err


def test_cli_unreadable_file_is_a_usage_error(
    tmp_path, capsys, monkeypatch
):
    target = tmp_path / "locked.py"
    target.write_text("VALUE = 1\n", encoding="utf-8")

    real_read_text = Path.read_text

    def deny(self, *args, **kwargs):
        if self.name == "locked.py":
            raise PermissionError(13, "Permission denied", str(self))
        return real_read_text(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", deny)
    code = repro_main(["lint", str(target)])
    err = capsys.readouterr().err
    assert code == 2
    assert "Permission denied" in err
    assert "Traceback" not in err
