"""Unit coverage for the summary extractor and the project graph."""

import ast
from pathlib import Path

from repro.devtools.analysis import (
    ProjectGraph,
    module_name_for,
    summarize_module,
)

HOT = ("corpus", "paths", "routes", "route_tree", "links", "topology")


def summarize(relpath, source):
    return summarize_module(relpath, ast.parse(source), HOT)


def graph_of(*modules):
    return ProjectGraph([summarize(rel, src) for rel, src in modules])


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------

def test_module_name_walks_package_dirs(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "mod.py").write_text("", encoding="utf-8")
    assert module_name_for(pkg / "mod.py") == ("pkg.sub.mod", False)
    assert module_name_for(pkg / "__init__.py") == ("pkg.sub", True)
    assert module_name_for(Path("loose.py")) == ("loose", False)


# ----------------------------------------------------------------------
# summary facts
# ----------------------------------------------------------------------

def test_summary_records_calls_sources_and_loops():
    source = (
        "import time\n"
        "import numpy as np\n"
        "def helper():\n"
        "    return time.time()\n"
        "def top(corpus):\n"
        "    rng = np.random.default_rng()\n"
        "    for path in corpus.paths:\n"
        "        helper()\n"
        "    for i in range(len(corpus.paths)):\n"
        "        pass\n"
    )
    summary = summarize("a.py", source)
    (helper, top) = summary["functions"]
    assert helper["sources"] == [["clock", "time.time(...)", 4]]
    assert ["rng", "np.random.default_rng() without a seed", 6] \
        in top["sources"]
    kinds = sorted(loop[2] for loop in top["loops"])
    assert kinds == ["hot", "rangelen"]
    assert ["helper", 8, 0] in top["calls"]


def test_fromiter_generator_is_not_a_hot_loop():
    source = (
        "import numpy as np\n"
        "def pack(paths):\n"
        "    return np.fromiter((len(p) for p in paths), dtype=int)\n"
    )
    (record,) = summarize("a.py", source)["functions"]
    assert record["loops"] == []


def test_relative_import_resolution():
    source = "from . import sibling\nfrom ..top import thing\n"
    summary = summarize_module("pkg/sub/mod.py", ast.parse(source), HOT)
    # module_name_for sees no __init__.py on disk for the fake path, so
    # build the summarizer input through a package-shaped relpath works
    # only for the alias map shape; resolution itself is covered below.
    assert "sibling" in summary["imports"]


# ----------------------------------------------------------------------
# graph resolution and reachability
# ----------------------------------------------------------------------

def test_cross_module_resolution_and_chain():
    graph = graph_of(
        ("a.py", "from b import helper\ndef entry():\n"
                 "    return helper()\n"),
        ("b.py", "def helper():\n    return inner()\n"
                 "def inner():\n    return 1\n"),
    )
    parents = graph.forward_reachable(["a::entry"])
    assert set(parents) == {"a::entry", "b::helper", "b::inner"}
    chain = graph.chain(parents, "b::inner")
    assert [fid for fid, _ in chain] == ["a::entry", "b::helper",
                                         "b::inner"]


def test_class_and_self_method_resolution():
    graph = graph_of(
        ("m.py",
         "class Engine:\n"
         "    def __init__(self):\n"
         "        self.prepare()\n"
         "    def prepare(self):\n"
         "        return 1\n"
         "def build():\n"
         "    return Engine()\n"),
    )
    assert ("m::Engine.__init__", 3) in graph.calls["m::build"] or \
        graph.calls["m::build"][0][0] == "m::Engine.__init__"
    assert graph.calls["m::Engine.__init__"][0][0] == "m::Engine.prepare"


def test_unresolvable_calls_add_no_edges():
    graph = graph_of(
        ("m.py", "def go(fn):\n    return fn() + unknown()\n"),
    )
    assert "m::go" not in graph.calls


def test_reexport_chasing_through_package_init(tmp_path):
    # Module naming walks real __init__.py files, so build a real tree.
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from pkg.impl import build\n",
                                     encoding="utf-8")
    (pkg / "impl.py").write_text("def build():\n    return 1\n",
                                 encoding="utf-8")
    use = tmp_path / "use.py"
    use.write_text("import pkg\ndef run():\n    return pkg.build()\n",
                   encoding="utf-8")
    graph = ProjectGraph([
        summarize_module(str(path),
                         ast.parse(path.read_text(encoding="utf-8")),
                         HOT)
        for path in (pkg / "__init__.py", pkg / "impl.py", use)
    ])
    assert graph.calls["use::run"][0][0] == "pkg.impl::build"


def test_executor_edges_and_kinds():
    # Executor-name kinds are a module-wide map, so the process pool
    # gets a name distinct from the run_in_executor argument.
    graph = graph_of(
        ("w.py",
         "from concurrent.futures import ProcessPoolExecutor\n"
         "def job():\n    return 1\n"
         "def init():\n    return 0\n"
         "async def go(loop, pool):\n"
         "    await loop.run_in_executor(pool, job)\n"
         "def fan(chunks):\n"
         "    with ProcessPoolExecutor(initializer=init) as procs:\n"
         "        return list(procs.map(job, chunks))\n"),
    )
    kinds = {(kind, callee) for kind, _caller, callee, _line
             in graph.executor_edges}
    assert ("thread", "w::job") in kinds
    assert ("process", "w::job") in kinds
    assert ("process_init", "w::init") in kinds


def test_render_edges_is_sorted_and_filterable():
    graph = graph_of(
        ("a.py", "from b import helper\ndef entry():\n"
                 "    return helper()\n"),
        ("b.py", "def helper():\n    return 1\n"),
    )
    lines = graph.render_edges("")
    assert lines == sorted(lines) or len(lines) == 1
    assert graph.render_edges("a:") == [
        "a:entry -> b:helper  [line 3]"
    ]
    assert graph.render_edges("zzz") == []
