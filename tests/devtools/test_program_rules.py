"""Whole-program rule coverage over the multi-file fixture packages.

Each package under ``fixtures/`` exercises one rule family across
module boundaries — the configurations a single-file pass cannot see.
"""

from pathlib import Path

import pytest

from repro.devtools import LintConfig, run_lint
from repro.devtools.registry import all_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture package, expected finding count, clean package)
PROGRAM_CASES = {
    "FLOW101": ("flowpkg", 1, "flowpkg_ok"),
    "FLOW102": ("flowpkg", 1, "flowpkg_ok"),
    "FLOW103": ("flowpkg", 1, "flowpkg_ok"),
    "PERF001": ("perfpkg", 1, "flowpkg_ok"),
    "PERF002": ("perfpkg", 1, "flowpkg_ok"),
    "CONC001": ("concpkg", 1, "flowpkg_ok"),
    "CONC002": ("concpkg", 1, "flowpkg_ok"),
    "CONC003": ("concpkg", 1, "flowpkg_ok"),
}


def wp_lint(package, rule_id):
    config = LintConfig(
        select=[rule_id],
        perf_entry_modules=("perfpkg.engine",),
    )
    return run_lint([FIXTURES / package], config, whole_program=True)


@pytest.mark.parametrize("rule_id", sorted(PROGRAM_CASES))
def test_bad_package_triggers_rule(rule_id):
    package, expected_count, _ = PROGRAM_CASES[rule_id]
    result = wp_lint(package, rule_id)
    assert [f.rule_id for f in result.findings] == \
        [rule_id] * expected_count
    for finding in result.findings:
        assert finding.line >= 1 and finding.col >= 1
        assert f"fixtures/{package}/" in finding.path


@pytest.mark.parametrize("rule_id", sorted(PROGRAM_CASES))
def test_ok_package_is_clean(rule_id):
    _, _, ok = PROGRAM_CASES[rule_id]
    assert wp_lint(ok, rule_id).findings == []


def test_every_program_rule_has_a_fixture_case():
    program_scope = [rule_id for rule_id, rule_cls in all_rules().items()
                     if rule_cls.scope == "program"]
    assert sorted(program_scope) == sorted(PROGRAM_CASES)


def test_program_rules_are_silent_without_whole_program():
    for rule_id, (package, _, _) in sorted(PROGRAM_CASES.items()):
        config = LintConfig(select=[rule_id],
                            perf_entry_modules=("perfpkg.engine",))
        result = run_lint([FIXTURES / package], config)
        assert result.findings == [], rule_id


# ----------------------------------------------------------------------
# The acceptance scenario: per-file DET rules pass the taint package
# clean, FLOW1xx catches the cross-module flows.
# ----------------------------------------------------------------------

def test_flow_catches_what_per_file_det_misses():
    det = LintConfig(select=["DET001", "DET002", "DET003"])
    per_file = run_lint([FIXTURES / "flowpkg"], det)
    assert per_file.findings == []

    flow = LintConfig(select=["FLOW101", "FLOW102", "FLOW103"])
    wp = run_lint([FIXTURES / "flowpkg"], flow, whole_program=True)
    assert sorted(f.rule_id for f in wp.findings) == \
        ["FLOW101", "FLOW102", "FLOW103"]


def test_flow_message_spells_out_the_chain():
    result = wp_lint("flowpkg", "FLOW101")
    (finding,) = result.findings
    assert finding.path.endswith("flowpkg/keys.py")
    assert "flowpkg.keys:corpus_fingerprint" in finding.message
    assert "flowpkg.middle:mixed" in finding.message
    assert "flowpkg.entropy:noise" in finding.message


def test_perf_exemption_and_unreachable_negative():
    result = wp_lint("perfpkg", "PERF001")
    (finding,) = result.findings
    # Only the reachable non-exempt kernel fires: legacy_total is
    # marker-exempt, offline_report is unreachable from the entry.
    assert "accumulate" in finding.message
    assert "legacy" not in finding.message


def test_conc003_spares_the_initializer_path():
    result = wp_lint("concpkg", "CONC003")
    (finding,) = result.findings
    assert "tally_chunk" in finding.message
    assert "prime_worker" not in finding.message


def test_program_findings_respect_noqa(tmp_path):
    package = tmp_path / "noqapkg"
    package.mkdir()
    (package / "__init__.py").write_text("", encoding="utf-8")
    (package / "inner.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    (package / "keys.py").write_text(
        "from noqapkg.inner import stamp\n\n\n"
        "def build_key(name):\n"
        "    return f\"{name}-{stamp()}\"  # repro: noqa[FLOW102]\n",
        encoding="utf-8",
    )
    config = LintConfig(select=["FLOW102"])
    result = run_lint([package], config, whole_program=True)
    assert result.findings == []
    assert result.suppressed == 1
    # Without the program pass the marker must not be called unused.
    per_file = run_lint([package], LintConfig())
    assert "SUP001" not in {f.rule_id for f in per_file.findings}


def test_whole_program_repo_tree_is_clean():
    """The committed tree must audit clean under --whole-program."""
    root = Path(__file__).resolve().parents[2]
    targets = [root / "src", root / "benchmarks", root / "examples"]
    result = run_lint([p for p in targets if p.is_dir()], LintConfig(),
                      whole_program=True)
    assert result.findings == []
    assert result.analysis is not None
    assert result.analysis["modules"] > 100
    assert result.analysis["call_edges"] > 500
