"""PICKLE001 negative fixture: module-level workers only."""
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def helper(item):
    return item * 2


def run(items):
    with ProcessPoolExecutor(max_workers=2) as pool:
        process_futures = [pool.submit(helper, item) for item in items]
    with ThreadPoolExecutor(max_workers=2) as threads:
        # Threads share the interpreter: closures are fine here.
        thread_futures = [threads.submit(lambda i=i: i) for i in items]
    return process_futures, thread_futures
