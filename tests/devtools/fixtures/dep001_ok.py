"""DEP001 negative fixture: stdlib + numpy + first-party only."""
import json
import numpy as np

from repro.utils.rng import make_rng


def roll(seed):
    return json.dumps({"value": float(np.float64(seed))}), make_rng(seed)
