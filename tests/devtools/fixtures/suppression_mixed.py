"""Suppression fixture: one earning marker, one stale marker."""
import json


def emit(values):
    return json.dumps(set(values))  # repro: noqa[DET002]


def clean(values):
    return sorted(values)  # repro: noqa[DET002]
