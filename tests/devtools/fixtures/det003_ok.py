"""DET003 negative fixture: content-derived keys, clocks elsewhere."""
import hashlib
import time


def cache_key(config):
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def elapsed_since(start):
    # Wall clock outside any key/fingerprint context is fine.
    return time.time() - start
