"""ASYNC001 fixture: blocking work inline in coroutine bodies."""
import time
from pathlib import Path


async def handler(executor, path):
    time.sleep(0.1)                    # finding: sleeps the event loop
    data = Path(path).read_text()      # finding: sync file I/O
    future = executor.submit(len, data)
    return future.result()             # finding: blocking future join
