"""ASYNC002 negative fixture: every created task is retained."""
import asyncio


async def kick(work):
    task = asyncio.create_task(work())
    background = {asyncio.create_task(work())}
    await task
    return background
