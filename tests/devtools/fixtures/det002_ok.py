"""DET002 negative fixture: sorted() at every ordering boundary."""
import json


def emit(values, mapping):
    a = json.dumps(sorted(set(values)))
    b = ",".join(str(v) for v in sorted({1, 2, 3}))
    c = json.dumps(list(sorted(mapping.keys())))
    d = json.dumps(list(values))  # a list is already ordered
    return a, b, c, d
