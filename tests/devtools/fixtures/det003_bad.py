"""DET003 fixture: wall clock and entropy inside key construction."""
import os
import time
import uuid


def cache_key(config):
    return f"{config}-{time.time()}-{uuid.uuid4()}"  # two findings


def content_fingerprint(blob):
    return os.urandom(8).hex() + blob                # finding: entropy
