"""Nondeterminism sources — each innocuous to the per-file rules."""

import time

import numpy as np


def noise():
    # An unseeded bit generator: draws OS entropy like default_rng(),
    # but DET001 does not know the PCG64 spelling.
    gen = np.random.Generator(np.random.PCG64())
    return gen.random()


def stamp():
    return time.time()


def tags(routes):
    return {route[0] for route in routes}
