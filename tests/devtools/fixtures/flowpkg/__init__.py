"""Fixture: cross-module nondeterminism taint (FLOW1xx positives)."""
