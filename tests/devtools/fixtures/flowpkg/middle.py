"""A pass-through hop so the taint chain spans three modules."""

from flowpkg import entropy


def mixed(routes):
    base = entropy.noise()
    return base + len(routes)
