"""Sink functions: fingerprints, cache keys and digests."""

from flowpkg.entropy import stamp, tags
from flowpkg.middle import mixed


def corpus_fingerprint(routes):
    return f"{mixed(routes):.6f}"


def build_key(name):
    return f"{name}-{stamp()}"


def digest_tags(routes):
    return ",".join(str(tag) for tag in tags(routes))
