"""The hot entry module (configured via ``perf_entry_modules``)."""

from perfpkg.kernels import accumulate, legacy_total, walk


def propagate(corpus):
    return accumulate(corpus) + len(walk(corpus.paths))


def check(corpus):
    # Reaches legacy_total — which stays clean via the exempt marker.
    return propagate(corpus) == legacy_total(corpus)
