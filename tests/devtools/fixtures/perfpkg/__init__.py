"""Fixture: scalar loops on and off the hot path (PERF0xx)."""
