"""Kernels: two hot-path offenders, one exempt, one unreachable."""


def accumulate(corpus):
    total = 0
    for path in corpus.paths:  # PERF001: reachable from propagate
        total += len(path)
    return total


def walk(paths):
    out = []
    for i in range(len(paths)):  # PERF002: reachable from propagate
        out.append(paths[i])
    return out


def legacy_total(corpus):
    total = 0
    for path in corpus.paths:  # exempt: qualname carries "legacy"
        total += len(path)
    return total


def offline_report(corpus):
    lines = []
    for route in corpus.routes:  # clean: nothing hot reaches this
        lines.append(str(route))
    return lines
