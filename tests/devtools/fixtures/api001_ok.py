"""API001 negative fixture: __all__ matches the namespace exactly."""
from json import dumps

try:
    from json import JSONDecodeError
except ImportError:  # pragma: no cover - demonstrates Try handling
    JSONDecodeError = ValueError


class Widget:
    pass


VALUE = 3

__all__ = ["JSONDecodeError", "VALUE", "Widget", "dumps"]
