"""Fixture: the deterministic rewrite of flowpkg (FLOW1xx negatives)."""
