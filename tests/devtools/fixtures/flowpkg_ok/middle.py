"""Pass-through hop, same shape as the tainted variant."""

from flowpkg_ok import entropy


def mixed(routes):
    base = entropy.noise()
    return base + len(routes)
