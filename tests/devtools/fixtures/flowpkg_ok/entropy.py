"""The same helpers with every source of nondeterminism removed."""

import numpy as np


def noise():
    gen = np.random.Generator(np.random.PCG64(7))
    return gen.random()


def stamp():
    return "2024-01-01T00:00:00Z"


def tags(routes):
    return sorted({route[0] for route in routes})
