"""DET001 fixture: every way to smuggle in unseeded randomness."""
import random                      # finding: stdlib random import
from random import choice          # finding: stdlib random import-from
import numpy as np


def pick(items):
    np.random.seed(0)              # finding: legacy global RNG
    rng = np.random.default_rng()  # finding: unseeded default_rng
    return choice(items), rng, random.random()
