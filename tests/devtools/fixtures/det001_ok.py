"""DET001 negative fixture: explicitly seeded generator plumbing."""
import numpy as np


def pick(seed):
    rng = np.random.Generator(np.random.PCG64(seed))
    rng2 = np.random.default_rng(seed)
    return rng, rng2
