"""ASYNC002 fixture: fire-and-forget task creation."""
import asyncio


async def kick(work):
    asyncio.create_task(work())        # finding: task dropped on the floor
    await asyncio.sleep(0)
