"""ASYNC001 negative fixture: blocking work behind the executor."""
import asyncio
import time
from pathlib import Path


def blocking_read(path):
    # Sync in a plain function is fine — it runs on an executor thread.
    time.sleep(0.0)
    return Path(path).read_text()


async def handler(path):
    loop = asyncio.get_running_loop()
    data = await loop.run_in_executor(None, blocking_read, path)
    await asyncio.sleep(0)
    return data
