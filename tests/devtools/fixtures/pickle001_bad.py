"""PICKLE001 fixture: closures crossing the process-pool boundary."""
from concurrent.futures import ProcessPoolExecutor


def run(items):
    def helper(item):
        return item * 2

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(helper, item) for item in items]  # finding
        extra = pool.submit(lambda: 1)                           # finding
    return futures, extra
