"""API001 fixture: __all__ drifted from the module namespace."""


def real():
    return 1


__all__ = ["real", "phantom", "real"]  # phantom unbound, real duplicated
