"""DEP001 fixture: imports the project never declared."""
import requests                    # finding: undeclared third party
from flask import Flask            # finding: undeclared third party


def fetch(url):
    return requests.get(url), Flask
