"""DET002 fixture: unordered iterables reaching ordered sinks."""
import json


def emit(values, mapping):
    a = json.dumps(set(values))                  # finding: set -> dumps
    b = ",".join(str(v) for v in {1, 2, 3})      # finding: set literal -> join
    c = json.dumps(list(mapping.keys()))         # finding: keys via list()
    return a, b, c
