"""CONC003: a lost update in a pool worker, and the sanctioned
initializer-primed variant."""

from concurrent.futures import ProcessPoolExecutor

TOTALS = {}


def tally_chunk(chunk):
    TOTALS[chunk[0]] = sum(chunk)  # lost update: worker-local write
    return sum(chunk)


def run(chunks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(tally_chunk, chunks))


def prime_worker():
    TOTALS["base"] = 0  # sanctioned: runs in the pool initializer


def run_primed(chunks):
    with ProcessPoolExecutor(initializer=prime_worker) as pool:
        return list(pool.map(merge_chunk, chunks))


def merge_chunk(chunk):
    return sum(chunk) + TOTALS.get("base", 0)
