"""Fixture: executor-boundary concurrency hazards (CONC0xx)."""
