"""CONC002 positive: await while holding a synchronous lock."""

import threading

_lock = threading.Lock()


async def flush(writer):
    with _lock:
        await writer.drain()
