"""CONC001 positive: CACHE written from both sides, no lock."""

CACHE = {}


async def refresh(loop, pool, key):
    value = await loop.run_in_executor(pool, compute, key)
    CACHE[key] = value  # event-loop side, unguarded
    return value


def compute(key):
    result = key * 2
    CACHE[key] = result  # thread-executor side, unguarded
    return result
