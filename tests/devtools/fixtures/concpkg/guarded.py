"""CONC001 negative: both sides take the same lock."""

import threading

LOCK = threading.Lock()
STATS = {}


async def tally(loop, pool, key):
    value = await loop.run_in_executor(pool, crunch, key)
    with LOCK:
        STATS[key] = value
    return value


def crunch(key):
    value = key + 1
    with LOCK:
        STATS[key] = value
    return value
