"""The summary cache contract: invalidation, staleness, byte stability.

The cache is content-addressed, so correctness is three properties:
an edit changes the key (old entry never read), a version bump rejects
entries even under the same key (belt-and-braces field check), and a
given summary always serialises to the same bytes.
"""

import json
from pathlib import Path

import pytest

from repro.devtools import LintConfig, run_lint
from repro.devtools.analysis import (
    SummaryCache,
    build_project,
    extraction_config_digest,
    summary_key,
)
from repro.devtools.analysis import summaries as summaries_mod
from repro.devtools.reporters import render_json

FIXTURES = Path(__file__).parent / "fixtures"


def cache_files(root: Path):
    return sorted(p for p in Path(root).rglob("*.json"))


def build_once(cache, config=None):
    config = config or LintConfig()
    items = [(str(path), path.read_text(encoding="utf-8"), None)
             for path in sorted((FIXTURES / "flowpkg").glob("*.py"))]
    return build_project(items, config, cache)


def test_cold_then_warm_hit_counts(tmp_path):
    cache = SummaryCache(tmp_path / "c")
    _, cold = build_once(cache)
    assert cold["misses"] == 4 and cold["hits"] == 0
    assert cold["stores"] == 4
    cache2 = SummaryCache(tmp_path / "c")
    _, warm = build_once(cache2)
    assert warm["hits"] == 4 and warm["misses"] == 0
    assert warm["stores"] == 0


def test_edit_changes_the_key_and_invalidates(tmp_path):
    digest = extraction_config_digest(LintConfig())
    before = summary_key("m.py", "def f():\n    return 1\n", digest)
    after = summary_key("m.py", "def f():\n    return 2\n", digest)
    assert before != after

    # End to end: lint a file, edit it, re-lint — the edited file is a
    # miss, the untouched key is never consulted again.
    target = tmp_path / "m.py"
    target.write_text("def f():\n    return 1\n", encoding="utf-8")
    cache = SummaryCache(tmp_path / "c")
    build_project([(str(target),
                    target.read_text(encoding="utf-8"), None)],
                  LintConfig(), cache)
    target.write_text("def f():\n    return 2\n", encoding="utf-8")
    cache2 = SummaryCache(tmp_path / "c")
    _, stats = build_project([(str(target),
                               target.read_text(encoding="utf-8"), None)],
                             LintConfig(), cache2)
    assert stats["hits"] == 0 and stats["misses"] == 1


def test_extraction_config_changes_the_key():
    source = "def f():\n    return 1\n"
    a = summary_key("m.py", source,
                    extraction_config_digest(LintConfig()))
    b = summary_key(
        "m.py", source,
        extraction_config_digest(
            LintConfig(perf_hot_names=("corpus",))))
    assert a != b


def test_version_bump_rejects_stale_summaries(tmp_path, monkeypatch):
    cache = SummaryCache(tmp_path / "c")
    _, cold = build_once(cache)
    assert cold["stores"] == 4

    # Same key, same files — but a newer analysis version must refuse
    # to trust the stored entries (the inner field check), not just
    # miss on a different hash.
    monkeypatch.setattr(summaries_mod, "ANALYSIS_VERSION",
                        summaries_mod.ANALYSIS_VERSION + 1)
    stale = SummaryCache(tmp_path / "c")
    digest = extraction_config_digest(LintConfig())
    for path in sorted((FIXTURES / "flowpkg").glob("*.py")):
        key = summary_key(str(path),
                          path.read_text(encoding="utf-8"), digest)
        assert stale.get(key) is None
    assert stale.hits == 0 and stale.misses == 4

    # And tampering the version field of a stored file is also caught.
    monkeypatch.undo()
    entry = cache_files(tmp_path / "c")[0]
    document = json.loads(entry.read_text(encoding="utf-8"))
    document["analysis_version"] = 999
    entry.write_text(json.dumps(document), encoding="utf-8")
    key = entry.stem
    fresh = SummaryCache(tmp_path / "c")
    assert fresh.get(key) is None


def test_cache_files_are_byte_stable_across_runs(tmp_path):
    cache_a = SummaryCache(tmp_path / "a")
    cache_b = SummaryCache(tmp_path / "b")
    build_once(cache_a)
    build_once(cache_b)
    files_a = cache_files(tmp_path / "a")
    files_b = cache_files(tmp_path / "b")
    assert [p.name for p in files_a] == [p.name for p in files_b]
    for left, right in zip(files_a, files_b):
        assert left.read_bytes() == right.read_bytes()


def test_warm_run_findings_are_byte_identical(tmp_path):
    config = LintConfig(select=["FLOW101", "FLOW102", "FLOW103"])
    cold = run_lint([FIXTURES / "flowpkg"], config, whole_program=True,
                    summary_cache=SummaryCache(tmp_path / "c"))
    warm = run_lint([FIXTURES / "flowpkg"], config, whole_program=True,
                    summary_cache=SummaryCache(tmp_path / "c"))
    assert warm.analysis["hits"] > 0 and warm.analysis["misses"] == 0
    assert cold.findings == warm.findings
    cold_doc = json.loads(render_json(cold))
    warm_doc = json.loads(render_json(warm))
    assert cold_doc["findings"] == warm_doc["findings"]


def test_unwritable_cache_degrades_silently(tmp_path):
    # Point the cache at a path that cannot be a directory.
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory", encoding="utf-8")
    cache = SummaryCache(blocker / "sub")
    graph, stats = build_once(cache)
    assert stats["stores"] == 0
    assert len(graph.modules) == 4


def test_program_pass_reuses_trees_without_a_cache():
    config = LintConfig(select=["FLOW101"])
    result = run_lint([FIXTURES / "flowpkg"], config,
                      whole_program=True, summary_cache=None)
    assert result.analysis is not None
    assert result.analysis["hits"] == 0
    assert [f.rule_id for f in result.findings] == ["FLOW101"]


def test_syntax_error_files_are_skipped_by_the_program_pass(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n", encoding="utf-8")
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = run_lint([tmp_path], LintConfig(), whole_program=True)
    assert [f.rule_id for f in result.findings] == ["SYN001"]
    assert result.analysis["modules"] == 1
