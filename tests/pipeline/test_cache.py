"""Artifact-cache correctness: round-trips, keys, invalidation, recovery.

The cache must be *transparent* — a warm build returns exactly what a
cold build computes — and *safe* — a stale or corrupted cache can only
cost a recompute, never an error or a wrong result.  Both properties
are asserted here directly against :class:`ArtifactCache` and through
``build_scenario``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import repro.scenario as scenario_module
from repro import ScenarioConfig, build_scenario
from repro.datasets.asrel import write_asrel
from repro.datasets.bgpdump import write_path_corpus
from repro.datasets.validationset import read_validation_set, write_validation_set
from repro.pipeline.cache import ArtifactCache, default_cache_root, resolve_cache
from repro.validation.cleaning import MultiLabelPolicy

SEEDS = (3, 5, 11)


def tiny_config(seed: int = 3) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=seed)
    config.topology.n_ases = 180
    config.measurement.n_vantage_points = 25
    config.measurement.n_churn_rounds = 2
    return config


@lru_cache(maxsize=None)
def cold_build(seed: int):
    """Uncached reference builds, shared across the assertions below."""
    return build_scenario(tiny_config(seed))


def corpus_bytes(corpus, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    write_path_corpus(corpus, path)
    return path.read_bytes()


def rels_bytes(rels, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    write_asrel(rels, path)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------

class TestScenarioKey:
    def test_same_config_same_key(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        assert cache.scenario_key(tiny_config(3)) == cache.scenario_key(
            tiny_config(3)
        )

    def test_different_configs_different_keys(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        base = cache.scenario_key(tiny_config(3))
        assert cache.scenario_key(tiny_config(5)) != base
        bigger = tiny_config(3)
        bigger.topology.n_ases = 200
        assert cache.scenario_key(bigger) != base
        more_vps = tiny_config(3)
        more_vps.measurement.n_vantage_points = 30
        assert cache.scenario_key(more_vps) != base

    def test_code_version_participates_in_key(self, tmp_path):
        old = ArtifactCache(root=tmp_path, code_version="A")
        new = ArtifactCache(root=tmp_path, code_version="B")
        config = tiny_config(3)
        assert old.scenario_key(config) != new.scenario_key(config)

    def test_key_is_stable_hex(self, tmp_path):
        key = ArtifactCache(root=tmp_path).scenario_key(tiny_config(3))
        assert len(key) == 20
        int(key, 16)  # raises if not hex


# ---------------------------------------------------------------------------
# artifact round-trips
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_corpus_round_trip(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path / "cache")
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        loaded = cache.load_corpus(key)
        assert cache.hits == 1 and cache.misses == 0
        assert corpus_bytes(loaded, tmp_path, "a") == corpus_bytes(
            scenario.corpus, tmp_path, "b"
        )

    def test_rels_round_trip(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path / "cache")
        key = cache.scenario_key(scenario.config)
        rels = scenario.infer("asrank")
        cache.store_rels(key, "asrank", rels, scenario.config)
        loaded = cache.load_rels(key, "asrank")
        assert rels_bytes(loaded, tmp_path, "a") == rels_bytes(
            rels, tmp_path, "b"
        )
        # Algorithms are separate artifacts — no cross-talk.
        assert cache.load_rels(key, "gao") is None

    def test_validation_round_trip_per_policy(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path / "cache")
        key = cache.scenario_key(scenario.config)
        cache.store_validation(
            key, MultiLabelPolicy.IGNORE, scenario.validation, scenario.config
        )
        loaded = cache.load_validation(key, MultiLabelPolicy.IGNORE)
        assert loaded.rels == scenario.validation.rels
        assert (
            loaded.report.as_dict() == scenario.validation.report.as_dict()
        )
        # A different cleaning policy is a different artifact.
        assert cache.load_validation(key, MultiLabelPolicy.ALWAYS_P2C) is None

    def test_validationset_serializer_round_trip(self, tmp_path):
        cleaned = cold_build(3).validation
        path = tmp_path / "val.txt"
        write_validation_set(cleaned, path)
        again = read_validation_set(path)
        assert again.rels == cleaned.rels
        assert again.report == cleaned.report


# ---------------------------------------------------------------------------
# invalidation and recovery
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_stale_code_version_is_a_miss(self, tmp_path):
        scenario = cold_build(3)
        writer = ArtifactCache(root=tmp_path, code_version="A")
        key = writer.scenario_key(scenario.config)
        writer.store_corpus(key, scenario.corpus, scenario.config)
        # Same key, newer code: the meta record disagrees, so the entry
        # is treated as foreign, purged, and reported as a miss.
        reader = ArtifactCache(root=tmp_path, code_version="B")
        assert reader.load_corpus(key) is None
        assert reader.misses == 1
        assert not (tmp_path / key).exists()

    def test_tampered_meta_purges_entry(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path)
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        (tmp_path / key / "meta.json").write_text("{not json", encoding="utf-8")
        assert cache.load_corpus(key) is None
        assert not (tmp_path / key).exists()

    def test_corrupted_artifact_discarded_not_fatal(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path)
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        corpus_path = tmp_path / key / "corpus.npc"
        corpus_path.write_text("@@ definitely not a path corpus @@\n",
                               encoding="utf-8")
        assert cache.load_corpus(key) is None
        assert not corpus_path.exists(), "corrupt artifact must be dropped"
        # The entry itself survives (meta is fine) and a rebuild through
        # build_scenario repopulates it.
        rebuilt = build_scenario(scenario.config, cache=cache)
        assert corpus_path.exists()
        assert rebuilt.validation.rels == scenario.validation.rels

    def test_missing_entry_is_plain_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        assert cache.load_corpus("0" * 20) is None
        assert cache.misses == 1 and cache.hits == 0


# ---------------------------------------------------------------------------
# build_scenario integration
# ---------------------------------------------------------------------------

class TestBuildScenarioCaching:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cached_build_identical_to_uncached(self, seed, tmp_path):
        cold_ref = cold_build(seed)
        cache = ArtifactCache(root=tmp_path / "cache")
        first = build_scenario(tiny_config(seed), cache=cache)
        warm = build_scenario(tiny_config(seed), cache=cache)
        for scenario in (first, warm):
            assert corpus_bytes(
                scenario.corpus, tmp_path, "got"
            ) == corpus_bytes(cold_ref.corpus, tmp_path, "ref")
            assert scenario.validation.rels == cold_ref.validation.rels
            assert rels_bytes(
                scenario.infer("asrank"), tmp_path, "got"
            ) == rels_bytes(cold_ref.infer("asrank"), tmp_path, "ref")
        # first build: corpus miss + store; warm build: corpus +
        # validation + asrank inference all served from cache.
        assert cache.hits >= 3

    def test_warm_build_skips_propagation(self, tmp_path, monkeypatch):
        config = tiny_config(3)
        cache = ArtifactCache(root=tmp_path)
        build_scenario(config, cache=cache)

        def boom(*args, **kwargs):
            raise AssertionError("propagation ran on a warm cache")

        monkeypatch.setattr(scenario_module, "collect_rounds", boom)
        warm = build_scenario(config, cache=cache)
        assert warm.validation.rels == cold_build(3).validation.rels

    def test_cached_inference_round_trip(self, tmp_path):
        config = tiny_config(3)
        cache = ArtifactCache(root=tmp_path)
        build_scenario(config, cache=cache).infer("gao")
        warm = build_scenario(config, cache=cache)
        hits_before = cache.hits
        rels = warm.infer("gao")
        assert cache.hits == hits_before + 1
        assert rels_bytes(rels, tmp_path, "got") == rels_bytes(
            cold_build(3).infer("gao"), tmp_path, "ref"
        )

    def test_lazy_raw_validation_on_cache_hit(self, tmp_path):
        config = tiny_config(3)
        cache = ArtifactCache(root=tmp_path)
        build_scenario(config, cache=cache)
        warm = build_scenario(config, cache=cache)
        assert warm._raw_validation is None, "cached build must not compile"
        lazy, reference = warm.raw_validation, cold_build(3).raw_validation
        assert list(lazy.data.links()) == list(reference.data.links())
        assert lazy.n_direct_reports == reference.n_direct_reports
        assert lazy.n_rpsl_records == reference.n_rpsl_records


# ---------------------------------------------------------------------------
# maintenance and plumbing
# ---------------------------------------------------------------------------

class TestMaintenance:
    def test_entries_clear_total_size(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path)
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        records = cache.entries()
        assert [r["key"] for r in records] == [key]
        assert records[0]["seed"] == scenario.config.seed
        assert records[0]["n_ases"] == scenario.config.topology.n_ases
        assert "corpus.npc" in records[0]["files"]
        assert cache.total_size() > 0
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_resolve_cache_coercion(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        passthrough = ArtifactCache(root=tmp_path)
        assert resolve_cache(passthrough) is passthrough
        from_path = resolve_cache(tmp_path / "elsewhere")
        assert from_path.root == tmp_path / "elsewhere"
        assert resolve_cache(True).root == default_cache_root()

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        assert default_cache_root() == tmp_path / "envroot"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_root().name == "repro"


# ---------------------------------------------------------------------------
# crash-safety regressions
# ---------------------------------------------------------------------------

class TestCrashSafetyRegressions:
    def test_store_refreshes_stale_meta(self, tmp_path):
        """A key dir with outdated ``meta.json`` must be re-stamped on store.

        Regression: ``_write_meta`` used to early-return whenever a meta
        file existed, so a store into an entry left by an older code
        version kept the stale version stamp and the key recomputed on
        every subsequent run, forever.
        """
        import json

        scenario = cold_build(3)
        config = scenario.config
        stale = ArtifactCache(root=tmp_path, code_version="ancient")
        key = stale.scenario_key(config)
        stale.store_corpus(key, scenario.corpus, config)

        current = ArtifactCache(root=tmp_path)
        assert current.load_corpus(key) is None, "stale code must miss"
        current.store_corpus(key, scenario.corpus, config)
        meta = json.loads((tmp_path / key / "meta.json").read_text())
        assert meta["code"] == current.code_version
        assert current.load_corpus(key) is not None, (
            "the refreshed entry must hit for the current code version"
        )

    def test_entries_survives_concurrent_deletion(self, tmp_path):
        """``entries()`` must not crash when a clearer races the listing."""
        from repro.testing.faults import Fault, FaultyFilesystem

        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path)
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        racing = ArtifactCache(
            root=tmp_path,
            fs=FaultyFilesystem([Fault(op="stat_size", kind="vanish")]),
        )
        records = racing.entries()  # must not raise FileNotFoundError
        assert isinstance(records, list)

    def test_entries_reports_locks_and_stragglers(self, tmp_path):
        scenario = cold_build(3)
        cache = ArtifactCache(root=tmp_path)
        key = cache.scenario_key(scenario.config)
        cache.store_corpus(key, scenario.corpus, scenario.config)
        (tmp_path / key / "corpus.npc.9999.0.tmp").write_text("torn")
        with cache.entry_lock(key):
            (record,) = cache.entries()
            assert record["locked"] is True
            assert record["stragglers"] == 1
            assert all(not f.endswith(".tmp") for f in record["files"])
        (record,) = cache.entries()
        assert record["locked"] is False
