"""Concurrency and crash safety of the artifact cache.

The invariant under test (see the ``cache.py`` module docstring):
**every fault — a crashed writer, a full disk, a concurrent deleter —
degrades to a recorded miss plus a recompute, never a crash or a wrong
artifact.**  Three layers of evidence:

* the full fault-injection matrix of :mod:`repro.testing.faults`, one
  parametrised case per (operation, kind) injection point;
* advisory :class:`~repro.pipeline.locks.EntryLock` semantics — mutual
  exclusion, timeout degradation, stale-lock recovery — plus the
  in-process proof that concurrent cold builds of one key single-flight;
* a multi-process stress test hammering one scenario key from
  concurrent writers, readers, fault-injected writers, and a clearer,
  asserting zero exceptions and byte-identical final artifacts.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import subprocess
import sys
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Tuple

import pytest

import repro.scenario as scenario_module
from repro.config import ScenarioConfig
from repro.datasets.bgpdump import write_path_corpus
from repro.datasets.paths import CollectedRoute, PathCorpus
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.locks import EntryLock, is_locked, lock_path
from repro.scenario import build_scenario
from repro.testing.faults import (
    INJECTION_MATRIX,
    Fault,
    FaultyFilesystem,
    InjectedCrash,
    full_fault_matrix,
    seeded_fault_plan,
)

#: Operations exercised by the store path vs the load path.
_WRITE_OPS = frozenset({"write_text", "run_writer", "replace"})


def _canonical_corpus() -> PathCorpus:
    """A tiny, fully deterministic corpus (no scenario build needed)."""
    corpus = PathCorpus()
    for path in ((10, 20, 30), (10, 20, 40), (11, 20, 30), (11, 40, 50)):
        corpus.add_route(CollectedRoute(
            vp=path[0], origin=path[-1], path=path,
            communities=((path[1], 100),),
        ))
    return corpus


def _corpus_bytes(corpus: PathCorpus, path: Path) -> bytes:
    write_path_corpus(corpus, path)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# the fault-injection matrix
# ---------------------------------------------------------------------------

class TestFaultMatrix:
    @pytest.mark.parametrize(
        "fault", full_fault_matrix(), ids=lambda f: f"{f.op}-{f.kind}"
    )
    def test_every_fault_degrades_to_miss_plus_recompute(
        self, fault: Fault, tmp_path
    ):
        config = ScenarioConfig.small(seed=3)
        corpus = _canonical_corpus()
        ref = _corpus_bytes(corpus, tmp_path / "ref.paths")
        root = tmp_path / "cache"
        fs = FaultyFilesystem([fault])
        faulty = ArtifactCache(root=root, fs=fs)
        key = faulty.scenario_key(config)

        if fault.op in _WRITE_OPS:
            # Store under fault.  A crash/partial aborts the caller like
            # process death; ENOSPC must be swallowed (degrade, not die).
            try:
                faulty.store_corpus(key, corpus, config)
            except InjectedCrash:
                pass
            if fault.kind == "enospc":
                assert faulty.store_errors >= 1
        else:
            # Read-side faults: publish cleanly first, then load through
            # the faulty filesystem.
            ArtifactCache(root=root).store_corpus(key, corpus, config)
            if fault.op == "stat_size":
                records = faulty.entries()  # concurrent clear vs list
                assert isinstance(records, list)  # and above all: no raise
            else:
                loaded = faulty.load_corpus(key)
                if loaded is not None:
                    # Never a wrong artifact: anything served is exact.
                    got = _corpus_bytes(loaded, tmp_path / "got.paths")
                    assert got == ref
                if fault.op == "run_reader" and fault.kind == "flicker":
                    # Transient vanish: retry-once must recover the hit.
                    assert loaded is not None
                    assert faulty.read_retries == 1

        assert fs.injected, "the armed fault never fired"

        # Inspection never crashes, whatever residue the fault left.
        residue = ArtifactCache(root=root).entries()
        assert isinstance(residue, list)

        # Recovery: a fresh process sees a miss (or the intact artifact),
        # recomputes, and ends byte-identical to the reference.
        clean = ArtifactCache(root=root)
        recovered = clean.load_corpus(key)
        if recovered is None:
            clean.store_corpus(key, corpus, config)
            recovered = clean.load_corpus(key)
        assert recovered is not None
        assert _corpus_bytes(recovered, tmp_path / "out.paths") == ref

    def test_crashed_writer_leaves_only_a_visible_straggler(self, tmp_path):
        config = ScenarioConfig.small(seed=3)
        corpus = _canonical_corpus()
        fs = FaultyFilesystem(
            [Fault(op="run_writer", kind="partial", path_substring="corpus")]
        )
        cache = ArtifactCache(root=tmp_path, fs=fs)
        key = cache.scenario_key(config)
        with pytest.raises(InjectedCrash):
            cache.store_corpus(key, corpus, config)
        (record,) = ArtifactCache(root=tmp_path).entries()
        assert record["stragglers"] == 1
        assert "corpus.npc" not in record["files"]  # half-writes unpublished

    def test_seeded_fault_plan_is_deterministic(self):
        assert seeded_fault_plan(42, n_faults=5) == seeded_fault_plan(
            42, n_faults=5
        )
        for fault in seeded_fault_plan(7, n_faults=10):
            assert fault.kind in INJECTION_MATRIX[fault.op]

    def test_fault_validates_injection_point(self):
        with pytest.raises(ValueError):
            Fault(op="replace", kind="partial")  # rename is atomic
        with pytest.raises(ValueError):
            Fault(op="no_such_op", kind="crash")


# ---------------------------------------------------------------------------
# advisory entry locks
# ---------------------------------------------------------------------------

class TestEntryLock:
    def test_mutual_exclusion_and_probe(self, tmp_path):
        a = EntryLock(tmp_path, "k1", timeout=5.0)
        b = EntryLock(tmp_path, "k1", timeout=0.2, poll_interval=0.02)
        assert a.acquire()
        assert is_locked(tmp_path, "k1")
        assert not b.acquire(), "second holder must time out, not deadlock"
        a.release()
        assert not is_locked(tmp_path, "k1")
        assert b.acquire()
        b.release()

    def test_distinct_entries_do_not_contend(self, tmp_path):
        a = EntryLock(tmp_path, "k1", timeout=1.0)
        b = EntryLock(tmp_path, "k2", timeout=1.0)
        assert a.acquire() and b.acquire()
        a.release()
        b.release()

    def test_context_manager_records_outcome(self, tmp_path):
        with EntryLock(tmp_path, "k", timeout=1.0) as lock:
            assert lock.acquired
            # A second taker inside the window degrades, not raises.
            with EntryLock(
                tmp_path, "k", timeout=0.1, poll_interval=0.02
            ) as loser:
                assert not loser.acquired
        assert not is_locked(tmp_path, "k")

    def test_fallback_breaks_unparsable_stale_lock(self, tmp_path):
        path = lock_path(tmp_path, "k")
        path.parent.mkdir(parents=True)
        path.write_text("not-a-pid\n", encoding="ascii")
        lock = EntryLock(
            tmp_path, "k", timeout=2.0, poll_interval=0.01, use_fcntl=False
        )
        assert lock.acquire(), "a pid-less lock file is stale by definition"
        lock.release()
        assert not path.exists()

    def test_fallback_breaks_dead_owner_lock(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=60)
        path = lock_path(tmp_path, "k")
        path.parent.mkdir(parents=True)
        path.write_text(f"{proc.pid}\n", encoding="ascii")
        lock = EntryLock(
            tmp_path, "k", timeout=2.0, poll_interval=0.01, use_fcntl=False
        )
        assert lock.acquire(), "a dead owner's lock must be recovered"
        lock.release()

    def test_fallback_respects_live_owner(self, tmp_path):
        path = lock_path(tmp_path, "k")
        path.parent.mkdir(parents=True)
        path.write_text(f"{_my_pid()}\n", encoding="ascii")
        lock = EntryLock(
            tmp_path, "k", timeout=0.15, poll_interval=0.02, use_fcntl=False
        )
        assert not lock.acquire()
        assert path.exists(), "a fresh live-owner lock must not be broken"

    def test_clear_sweeps_unheld_locks_only(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        config = ScenarioConfig.small(seed=3)
        key = cache.scenario_key(config)
        cache.store_corpus(key, _canonical_corpus(), config)
        held = cache.entry_lock(key)
        assert held.acquire()
        stale = lock_path(tmp_path, "dead0000000000000000")
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("", encoding="ascii")
        assert cache.clear() == 1
        assert not stale.exists(), "unheld lock files are swept"
        assert held.path.exists(), "a held lock must survive clear()"
        held.release()


def _my_pid() -> int:
    import os

    return os.getpid()


# ---------------------------------------------------------------------------
# single-flight cold builds
# ---------------------------------------------------------------------------

def test_concurrent_cold_builds_single_flight(tmp_path, monkeypatch):
    """Two simultaneous cold builders of one key: one propagation run.

    The entry lock serialises them and the loser's post-lock re-check
    loads the winner's published corpus instead of recomputing.  Uses
    threads (the lock is fd-based, so it contends within one process
    too) and a config small enough to build in well under a second.
    """
    config = ScenarioConfig.small(seed=3)
    config.topology.n_ases = 160
    config.measurement.n_vantage_points = 20
    config.measurement.n_churn_rounds = 1

    n_collects: List[int] = []
    real_collect = scenario_module.collect_rounds

    def counting_collect(*args, **kwargs):
        n_collects.append(1)
        return real_collect(*args, **kwargs)

    monkeypatch.setattr(scenario_module, "collect_rounds", counting_collect)

    errors: List[str] = []

    def build_one() -> None:
        try:
            build_scenario(config, cache=ArtifactCache(root=tmp_path))
        except Exception:  # pragma: no cover - failure reporting only
            errors.append(traceback.format_exc())

    threads = [threading.Thread(target=build_one) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert errors == []
    assert len(n_collects) == 1, "cold stampede: propagation ran twice"


# ---------------------------------------------------------------------------
# multi-process contention stress
# ---------------------------------------------------------------------------

#: (role, cache root, scratch dir, chaos seed, iterations)
_StressSpec = Tuple[str, str, str, int, int]


def _stress_worker(spec: _StressSpec) -> List[str]:
    """One stress process; returns formatted errors (empty = clean)."""
    role, root, scratch, seed, n_iters = spec
    errors: List[str] = []
    try:
        config = ScenarioConfig.small(seed=3)
        corpus = _canonical_corpus()
        scratch_dir = Path(scratch)
        scratch_dir.mkdir(parents=True, exist_ok=True)
        ref = _corpus_bytes(corpus, scratch_dir / "ref.paths")
        if role == "chaos":
            cache = ArtifactCache(
                root=root,
                fs=FaultyFilesystem(seeded_fault_plan(seed, n_faults=4)),
                lock_timeout=30.0,
            )
        else:
            cache = ArtifactCache(root=root, lock_timeout=30.0)
        key = cache.scenario_key(config)
        for i in range(n_iters):
            try:
                if role in ("writer", "chaos"):
                    with cache.entry_lock(key):
                        if cache.load_corpus(key) is None:
                            cache.store_corpus(key, corpus, config)
                elif role == "reader":
                    loaded = cache.load_corpus(key)
                    if loaded is not None:
                        got = _corpus_bytes(
                            loaded, scratch_dir / f"got-{i}.paths"
                        )
                        if got != ref:
                            errors.append(
                                f"{role}: served artifact differs on "
                                f"iteration {i}"
                            )
                else:  # clearer
                    cache.entries()
                    if i % 4 == 2:
                        cache.clear()
            except InjectedCrash:
                # Simulated process death: abandon the operation exactly
                # where it stood and keep hammering, like a restarted job.
                continue
    except Exception:  # noqa: BLE001 - everything is a stress failure
        errors.append(f"{role}: {traceback.format_exc()}")
    return errors


def test_multiprocess_contention_stress(tmp_path):
    """Writers + fault-injected writers + readers + a clearer, one key.

    Zero exceptions in any process, no reader ever observes non-exact
    bytes, and the final state recomputes to a byte-identical artifact.
    """
    root = tmp_path / "shared-cache"
    roles = ["writer", "writer", "writer", "chaos", "chaos",
             "reader", "reader", "clearer"]
    specs: List[_StressSpec] = [
        (role, str(root), str(tmp_path / f"scratch-{i}"), 1000 + i, 12)
        for i, role in enumerate(roles)
    ]
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=len(specs), mp_context=context
    ) as pool:
        results = list(pool.map(_stress_worker, specs))
    flat = [error for errors in results for error in errors]
    assert flat == [], "\n".join(flat)

    # Whatever interleaving happened, the survivors converge: a fresh
    # cache serves (or recomputes to) the exact canonical bytes.
    cache = ArtifactCache(root=root)
    config = ScenarioConfig.small(seed=3)
    key = cache.scenario_key(config)
    final = cache.load_corpus(key)
    if final is None:
        cache.store_corpus(key, _canonical_corpus(), config)
        final = cache.load_corpus(key)
    assert final is not None
    assert _corpus_bytes(final, tmp_path / "final.paths") == _corpus_bytes(
        _canonical_corpus(), tmp_path / "canonical.paths"
    )


# ---------------------------------------------------------------------------
# event-loop interaction sanity
# ---------------------------------------------------------------------------

def test_entry_lock_never_blocks_forever(tmp_path):
    """A held lock plus an impatient taker resolves within the timeout.

    (Regression guard for the serve path: a wedged lock must degrade to
    an unlocked build, not hang the build thread.)
    """
    holder = EntryLock(tmp_path, "k", timeout=1.0)
    assert holder.acquire()

    async def impatient() -> bool:
        loop = asyncio.get_running_loop()
        taker = EntryLock(tmp_path, "k", timeout=0.2, poll_interval=0.02)
        return await loop.run_in_executor(None, taker.acquire)

    assert asyncio.run(impatient()) is False
    holder.release()
