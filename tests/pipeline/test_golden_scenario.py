"""Golden regression lock on the small scenario's paper outputs.

``golden_small_seed7.json`` is a checked-in snapshot of what
``small_scenario(seed=7)`` produces: corpus statistics, the §4.2
cleaning report, the full ASRank validation table (Table-1-style rows,
exact floats) and the regional bias profile (Figure-1-style).  The test
recomputes everything and asserts **exact** equality — floats included,
since JSON round-trips IEEE doubles losslessly via ``repr``.

Any perf refactor (parallel propagation, caching, index changes) that
shifts a single route, label, or tie-break fails here, loudly.  If a
*deliberate* science change moves the numbers, regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/pipeline/test_golden_scenario.py

and review the diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro import small_scenario

GOLDEN_PATH = Path(__file__).parent / "golden_small_seed7.json"


def compute_payload() -> dict:
    """Everything the golden file locks down, as plain JSON data."""
    scenario = small_scenario(seed=7)
    table = scenario.validation_table("asrank")
    return {
        "config_fingerprint": scenario.config.fingerprint(),
        "corpus_stats": scenario.corpus.stats(),
        "cleaning_report": scenario.validation.report.as_dict(),
        "asrank_table": {
            "total": dataclasses.asdict(table.total),
            "rows": [dataclasses.asdict(row.metrics) for row in table.rows],
        },
        "regional_bias": [
            dataclasses.asdict(cls)
            for cls in scenario.regional_bias().classes
        ],
    }


def test_golden_small_scenario():
    payload = compute_payload()
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip("golden snapshot regenerated — commit the diff")
    assert GOLDEN_PATH.exists(), (
        "golden snapshot missing; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    # Compare section by section for readable failures before the
    # whole-payload equality check catches anything left.
    for section in golden:
        assert payload[section] == golden[section], (
            f"golden mismatch in {section!r}"
        )
    assert payload == golden


def test_golden_covers_precision_rows():
    """The snapshot must actually contain Table-1-style content —
    guard against an accidentally empty regeneration."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert golden["asrank_table"]["rows"], "no table rows locked"
    total = golden["asrank_table"]["total"]
    assert 0.0 < total["ppv_p2c"] <= 1.0
    assert golden["regional_bias"], "no bias classes locked"
    assert golden["corpus_stats"]["n_routes"] > 0
