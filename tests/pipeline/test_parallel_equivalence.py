"""Differential tests: parallel execution must be invisible.

The property under test is strict — not "statistically equivalent" but
*byte-identical*: route trees, serialised path corpora, and inference
outputs produced with worker processes must match the serial pipeline
exactly, across seeds and worker counts.  Anything weaker would let a
perf refactor silently move the paper's numbers.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import ParallelPropagator, ScenarioConfig, build_scenario
from repro.bgp.collectors import collect_corpus
from repro.bgp.policy import AdjacencyIndex
from repro.bgp.propagation import compute_route_tree, iter_route_trees
from repro.datasets.asrel import write_asrel
from repro.datasets.bgpdump import write_path_corpus
from repro.topology.generator import generate_topology

#: Three seeds, per the acceptance criteria; kept small so the whole
#: differential layer stays in the seconds range on one core.
SEEDS = (3, 5, 11)


def tiny_config(seed: int) -> ScenarioConfig:
    """A reduced scenario sized for fast serial-vs-parallel rebuilds."""
    config = ScenarioConfig.small(seed=seed)
    config.topology.n_ases = 180
    config.measurement.n_vantage_points = 25
    config.measurement.n_churn_rounds = 2
    return config


@lru_cache(maxsize=None)
def built(seed: int, workers: int):
    """Scenario builds shared across the differential assertions."""
    return build_scenario(tiny_config(seed), workers=workers)


def corpus_bytes(corpus, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    write_path_corpus(corpus, path)
    return path.read_bytes()


def rels_bytes(rels, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    write_asrel(rels, path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def adjacency():
    topology = generate_topology(tiny_config(seed=SEEDS[0]))
    return AdjacencyIndex(topology.graph)


class TestRouteTrees:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_trees_identical_for_every_worker_count(self, adjacency, workers):
        origins = adjacency.asns[:60]
        serial = [compute_route_tree(adjacency, o) for o in origins]
        parallel = list(
            ParallelPropagator(adjacency, workers=workers).iter_route_trees(
                origins
            )
        )
        assert len(parallel) == len(serial)
        for expected, got in zip(serial, parallel):
            # Dataclass equality covers pref/dist/parent/restricted.
            assert got == expected
            # Dict equality ignores ordering, but downstream consumers
            # iterate these dicts — demand the insertion order too.
            assert list(got.pref) == list(expected.pref)
            assert list(got.parent) == list(expected.parent)

    def test_iter_route_trees_workers_argument(self, adjacency):
        origins = adjacency.asns[:30]
        serial = list(iter_route_trees(adjacency, origins))
        parallel = list(iter_route_trees(adjacency, origins, workers=2))
        assert parallel == serial

    def test_single_origin_stays_in_process(self, adjacency):
        origin = adjacency.asns[0]
        # len(origins) <= 1 short-circuits the pool entirely.
        trees = list(
            ParallelPropagator(adjacency, workers=4).iter_route_trees(
                [origin]
            )
        )
        assert trees == [compute_route_tree(adjacency, origin)]


class TestCorpusEquivalence:
    def test_collect_corpus_workers_argument(self, tmp_path):
        config = tiny_config(SEEDS[0])
        topology = generate_topology(config)
        serial, _, _, _ = collect_corpus(topology, config)
        parallel, _, _, _ = collect_corpus(topology, config, workers=2)
        assert corpus_bytes(parallel, tmp_path, "par") == corpus_bytes(
            serial, tmp_path, "ser"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corpus_byte_identical(self, seed, tmp_path):
        serial, parallel = built(seed, 0), built(seed, 2)
        assert corpus_bytes(
            parallel.corpus, tmp_path, "par"
        ) == corpus_bytes(serial.corpus, tmp_path, "ser")


class TestScenarioEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_validation_identical(self, seed):
        serial, parallel = built(seed, 0), built(seed, 2)
        assert parallel.validation.rels == serial.validation.rels
        assert (
            parallel.validation.report.as_dict()
            == serial.validation.report.as_dict()
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_inference_byte_identical(self, seed, tmp_path):
        serial, parallel = built(seed, 0), built(seed, 2)
        for algorithm in ("asrank", "gao"):
            assert rels_bytes(
                parallel.infer(algorithm), tmp_path, f"par-{algorithm}"
            ) == rels_bytes(
                serial.infer(algorithm), tmp_path, f"ser-{algorithm}"
            )

    def test_validation_table_identical(self):
        serial, parallel = built(SEEDS[0], 0), built(SEEDS[0], 2)
        table_s = serial.validation_table("asrank")
        table_p = parallel.validation_table("asrank")
        assert table_p.total == table_s.total
        assert table_p.rows == table_s.rows
        assert (
            parallel.regional_bias().classes == serial.regional_bias().classes
        )
