"""Columnar vs legacy byte-equality matrix.

The columnar engine's hard invariant is that it changes *nothing* about
the science: over several seeds, every inference algorithm must emit a
byte-identical as-rel serialisation whether the corpus is columnar
(default) or legacy (`REPRO_CORPUS_LAYOUT=legacy`-style dict indices),
and the cache artifact written for either layout must be the same file,
bit for bit.
"""

import hashlib

import pytest

from repro.bgp.collectors import collect_corpus
from repro.config import ScenarioConfig
from repro.datasets.asrel import write_asrel
from repro.datasets.paths import PathCorpus
from repro.inference.asrank import ASRank
from repro.inference.problink import ProbLink
from repro.inference.toposcope import TopoScope
from repro.pipeline.cache import ArtifactCache
from repro.topology.generator import generate_topology

SEEDS = (3, 5, 11)

_ALGORITHMS = {
    "asrank": ASRank,
    "problink": ProbLink,
    "toposcope": TopoScope,
}


def _config(seed: int) -> ScenarioConfig:
    config = ScenarioConfig.default().replace(seed=seed)
    config.topology.n_ases = 150
    config.measurement.n_vantage_points = 20
    config.measurement.n_churn_rounds = 1
    return config


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def corpora(request):
    """(config, columnar corpus, legacy corpus) with identical routes."""
    config = _config(request.param)
    topology = generate_topology(config)
    columnar, _, _, _ = collect_corpus(topology, config)
    assert columnar.columnar_index() is not None
    legacy = PathCorpus(layout="legacy")
    legacy.add_routes(columnar.routes())
    assert legacy.columnar_index() is None
    assert len(legacy) == len(columnar)
    return config, columnar, legacy


def _asrel_bytes(rels, path) -> bytes:
    write_asrel(rels, path)
    return path.read_bytes()


@pytest.mark.parametrize("algorithm", sorted(_ALGORITHMS))
def test_identical_relationships(corpora, algorithm, tmp_path):
    _, columnar, legacy = corpora
    factory = _ALGORITHMS[algorithm]
    from_columnar = _asrel_bytes(
        factory().infer(columnar), tmp_path / "columnar.asrel"
    )
    from_legacy = _asrel_bytes(
        factory().infer(legacy), tmp_path / "legacy.asrel"
    )
    assert from_columnar == from_legacy


def test_identical_cache_artifact_fingerprints(corpora, tmp_path):
    config, columnar, legacy = corpora
    cache_a = ArtifactCache(root=tmp_path / "a")
    cache_b = ArtifactCache(root=tmp_path / "b")
    key = cache_a.scenario_key(config)
    assert cache_b.scenario_key(config) == key
    artifact_a = cache_a.store_corpus(key, columnar, config)
    artifact_b = cache_b.store_corpus(key, legacy, config)
    digest_a = hashlib.sha256(artifact_a.read_bytes()).hexdigest()
    digest_b = hashlib.sha256(artifact_b.read_bytes()).hexdigest()
    assert digest_a == digest_b
    # The memory-mapped reload of that artifact serves the same corpus.
    reloaded = cache_a.load_corpus(key)
    assert reloaded is not None
    assert reloaded.stats() == columnar.stats()
    assert sorted(reloaded.visible_links()) == sorted(
        columnar.visible_links()
    )
