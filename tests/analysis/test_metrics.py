"""Tests for the classification-correctness metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import BinaryConfusion, ClassMetrics, confusion_for_links
from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import RelType
from repro.validation.cleaning import CleanedValidation, CleaningReport


def _validation(entries):
    rels = {}
    for a, b, rel, provider in entries:
        key = (min(a, b), max(a, b))
        rels[key] = (rel, provider)
    return CleanedValidation(rels=rels, report=CleaningReport())


class TestBinaryConfusion:
    def test_perfect(self):
        conf = BinaryConfusion(tp=10, fp=0, tn=10, fn=0)
        assert conf.ppv() == 1.0
        assert conf.tpr() == 1.0
        assert conf.mcc() == pytest.approx(1.0)
        assert conf.f1() == 1.0
        assert conf.fowlkes_mallows() == 1.0

    def test_inverted(self):
        conf = BinaryConfusion(tp=0, fp=10, tn=0, fn=10)
        assert conf.mcc() == pytest.approx(-1.0)

    def test_coin_toss_mcc_zero(self):
        conf = BinaryConfusion(tp=5, fp=5, tn=5, fn=5)
        assert conf.mcc() == pytest.approx(0.0)

    def test_degenerate_margins(self):
        assert BinaryConfusion(tp=0, fp=0, tn=10, fn=0).mcc() == 0.0
        assert BinaryConfusion(tp=0, fp=0, tn=0, fn=0).ppv() == 0.0
        assert BinaryConfusion(tp=0, fp=0, tn=0, fn=0).tpr() == 0.0

    def test_flip_swaps_classes(self):
        conf = BinaryConfusion(tp=3, fp=2, tn=7, fn=1)
        flipped = conf.flipped()
        assert flipped.tp == 7 and flipped.fn == 2
        # MCC is symmetric under class swap.
        assert conf.mcc() == pytest.approx(flipped.mcc())

    def test_positives_is_lc(self):
        conf = BinaryConfusion(tp=3, fp=2, tn=7, fn=1)
        assert conf.positives == 4

    def test_balanced_accuracy(self):
        conf = BinaryConfusion(tp=8, fp=2, tn=6, fn=4)
        expected = (8 / 12 + 6 / 8) / 2
        assert conf.balanced_accuracy() == pytest.approx(expected)

    @given(
        st.integers(0, 200), st.integers(0, 200),
        st.integers(0, 200), st.integers(0, 200),
    )
    def test_mcc_bounded(self, tp, fp, tn, fn):
        mcc = BinaryConfusion(tp=tp, fp=fp, tn=tn, fn=fn).mcc()
        assert -1.0 <= mcc <= 1.0

    @given(
        st.integers(0, 200), st.integers(0, 200),
        st.integers(0, 200), st.integers(0, 200),
    )
    def test_fmi_is_geometric_mean(self, tp, fp, tn, fn):
        conf = BinaryConfusion(tp=tp, fp=fp, tn=tn, fn=fn)
        assert conf.fowlkes_mallows() == pytest.approx(
            math.sqrt(conf.ppv() * conf.tpr())
        )


class TestConfusionForLinks:
    def _setup(self):
        inferred = RelationshipSet()
        inferred.set_p2p(1, 2)       # true P2P -> TP (P2P positive)
        inferred.set_p2c(3, 4)       # true P2C -> TN
        inferred.set_p2p(5, 6)       # true P2C -> FP
        inferred.set_p2c(7, 8)       # true P2P -> FN
        validation = _validation([
            (1, 2, RelType.P2P, None),
            (3, 4, RelType.P2C, 3),
            (5, 6, RelType.P2C, 5),
            (7, 8, RelType.P2P, None),
            (9, 10, RelType.P2P, None),   # not inferred: skipped
        ])
        links = [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10), (11, 12)]
        return links, inferred, validation

    def test_matrix(self):
        links, inferred, validation = self._setup()
        conf = confusion_for_links(links, inferred, validation, RelType.P2P)
        assert (conf.tp, conf.fp, conf.tn, conf.fn) == (1, 1, 1, 1)

    def test_positive_class_flip(self):
        links, inferred, validation = self._setup()
        p2p = confusion_for_links(links, inferred, validation, RelType.P2P)
        p2c = confusion_for_links(links, inferred, validation, RelType.P2C)
        assert p2c.tp == p2p.tn and p2c.fn == p2p.fp

    def test_invalid_positive_class(self):
        links, inferred, validation = self._setup()
        with pytest.raises(ValueError):
            confusion_for_links(links, inferred, validation, RelType.S2S)


class TestClassMetrics:
    def test_from_links(self):
        inferred = RelationshipSet()
        inferred.set_p2p(1, 2)
        inferred.set_p2c(3, 4)
        validation = _validation([
            (1, 2, RelType.P2P, None),
            (3, 4, RelType.P2C, 3),
        ])
        metrics = ClassMetrics.from_links("X", [(1, 2), (3, 4)], inferred, validation)
        assert metrics.ppv_p2p == 1.0
        assert metrics.n_p2p == 1 and metrics.n_p2c == 1
        assert metrics.n_validated == 2
        assert metrics.mcc == pytest.approx(1.0)
