"""Tests for the hard-link taxonomy (§3.3) and uncertainty analysis."""

import pytest

from repro.analysis.hardlinks import (
    HARD_CATEGORIES,
    HardLinkClassifier,
    hard_link_report,
)
from repro.analysis.uncertainty import (
    calibration_curve,
    expected_calibration_error,
    selective_accuracy,
    uncertainty_by_class,
)
from repro.inference.problink import ProbLink
from repro.topology.graph import RelType
from repro.validation.cleaning import CleanedValidation, CleaningReport


@pytest.fixture(scope="module")
def report(scenario):
    return hard_link_report(
        scenario.corpus, scenario.algorithm("asrank").clique_
    )


class TestHardLinkTaxonomy:
    def test_all_categories_present(self, report):
        assert set(report.categories) == set(HARD_CATEGORIES)

    def test_categories_subset_of_links(self, scenario, report):
        visible = set(scenario.corpus.visible_links())
        for links in report.categories.values():
            assert links <= visible

    def test_hard_share_sane(self, report):
        assert 0.0 < report.hard_share() <= 1.0

    def test_remote_links_touch_neither_vp_nor_clique(self, scenario, report):
        vps = scenario.corpus.vantage_points
        clique = set(scenario.algorithm("asrank").clique_)
        for a, b in report.categories["remote"]:
            assert a not in vps and b not in vps
            assert a not in clique and b not in clique

    def test_stub_no_triplet_links_are_stub_links(self, scenario, report):
        degrees = scenario.corpus.transit_degrees()
        for a, b in report.categories["stub_no_triplet"]:
            assert min(degrees.get(a, 0), degrees.get(b, 0)) == 0

    def test_hard_links_are_harder_to_infer(self, scenario, report):
        """Sanity anchor: ASRank's ground-truth error rate is higher on
        hard links than easy ones.

        Partial-transit links are excluded from the comparison: they
        are VP/clique-incident (so the Jin et al. taxonomy calls them
        "easy") yet systematically misinferred — which is precisely the
        gap the paper's §6.1 identifies in the existing hard-link
        categories."""
        rels = scenario.infer("asrank")
        graph = scenario.topology.graph
        stats = {True: [0, 0], False: [0, 0]}  # hard -> [errors, total]
        for key in scenario.corpus.visible_links():
            if not graph.has_link(*key):
                continue
            link = graph.link(*key)
            if link.rel is RelType.S2S or link.partial_transit:
                continue
            truth = link.rel
            predicted = rels.rel_of(*key)
            predicted = RelType.P2P if predicted is RelType.P2P else RelType.P2C
            slot = stats[report.is_hard(key)]
            slot[1] += 1
            slot[0] += predicted is not truth
        hard_err = stats[True][0] / max(1, stats[True][1])
        easy_err = stats[False][0] / max(1, stats[False][1])
        assert hard_err >= easy_err

    def test_validation_skew_towards_easy(self, scenario, report):
        """Jin et al.'s claim (§3.3): validation skews to easy links."""
        easy_cov, hard_cov = report.validation_skew(
            scenario.validation, scenario.inferred_links()
        )
        assert easy_cov > hard_cov


class TestUncertainty:
    @pytest.fixture(scope="class")
    def posteriors(self, scenario):
        problink = ProbLink(ixps=scenario.topology.ixps)
        problink.infer(scenario.corpus)
        return problink.posterior_p2p_

    def test_calibration_bins_cover_half_to_one(self, posteriors, scenario):
        bins = calibration_curve(posteriors, scenario.validation)
        assert len(bins) == 10
        assert bins[0].lower == pytest.approx(0.5)
        assert bins[-1].upper == pytest.approx(1.0)
        assert sum(b.n_links for b in bins) > 50

    def test_accuracies_are_probabilities(self, posteriors, scenario):
        for b in calibration_curve(posteriors, scenario.validation):
            assert 0.0 <= b.empirical_accuracy <= 1.0
            assert 0.0 <= b.mean_confidence <= 1.0

    def test_ece_bounded(self, posteriors, scenario):
        ece = expected_calibration_error(posteriors, scenario.validation)
        assert 0.0 <= ece <= 0.5

    def test_bad_bin_count_rejected(self, posteriors, scenario):
        with pytest.raises(ValueError):
            calibration_curve(posteriors, scenario.validation, n_bins=0)

    def test_selective_accuracy_monotone_coverage(self, posteriors, scenario):
        curve = selective_accuracy(posteriors, scenario.validation)
        coverages = [coverage for _, coverage, _ in curve]
        assert coverages == sorted(coverages, reverse=True)
        assert coverages[0] == 1.0  # threshold 0.5 keeps everything

    def test_empty_validation(self, posteriors):
        empty = CleanedValidation(rels={}, report=CleaningReport())
        assert expected_calibration_error(posteriors, empty) == 0.0
        assert selective_accuracy(posteriors, empty) == []

    def test_uncertainty_by_class(self, posteriors, scenario):
        margins = uncertainty_by_class(
            posteriors, scenario.topological_classifier().classify
        )
        assert margins
        for value in margins.values():
            assert 0.0 <= value <= 0.5
