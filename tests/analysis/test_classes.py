"""Tests for the regional and topological link classifiers."""

import pytest

from repro.analysis.classes import (
    RegionalClassifier,
    TopologicalClassifier,
    transit_internal_links,
)
from repro.datasets.asrel import RelationshipSet
from repro.topology.external_lists import ExternalLists
from repro.topology.regions import Region, RegionMap


@pytest.fixture
def region_map():
    rmap = RegionMap()
    rmap.add_iana_block(100, 199, Region.ARIN)
    rmap.add_iana_block(200, 299, Region.RIPE)
    rmap.add_iana_block(300, 399, Region.LACNIC)
    rmap.add_iana_block(400, 499, Region.AFRINIC)
    rmap.add_iana_block(500, 599, Region.APNIC)
    return rmap


class TestRegionalClassifier:
    def test_internal_class(self, region_map):
        classifier = RegionalClassifier(region_map)
        assert classifier.classify((100, 150)) == "AR°"
        assert classifier.classify((300, 350)) == "L°"

    def test_cross_class_lexicographic(self, region_map):
        classifier = RegionalClassifier(region_map)
        assert classifier.classify((100, 200)) == "AR-R"
        assert classifier.classify((200, 300)) == "L-R"
        assert classifier.classify((100, 500)) == "AP-AR"
        assert classifier.classify((400, 200)) == "AF-R"
        assert classifier.classify((100, 300)) == "AR-L"

    def test_unmapped_discarded(self, region_map):
        classifier = RegionalClassifier(region_map)
        assert classifier.classify((100, 999)) is None
        assert classifier.classify((23456, 100)) is None

    def test_classify_links_groups(self, region_map):
        classifier = RegionalClassifier(region_map)
        grouped = classifier.classify_links([(100, 150), (100, 200), (100, 999)])
        assert set(grouped) == {"AR°", "AR-R"}

    def test_paper_class_names(self, region_map):
        """All eleven Figure 1 class names are producible."""
        classifier = RegionalClassifier(region_map)
        produced = set()
        asns = {"AF": 400, "AP": 500, "AR": 100, "L": 300, "R": 200}
        for a in asns.values():
            for b in asns.values():
                if a != b:
                    produced.add(classifier.classify((a, b)))
        produced |= {classifier.classify((a, a + 1)) for a in asns.values()}
        for name in ("R°", "AR°", "L°", "AP°", "AR-R", "AP-R", "AP-AR",
                     "AF-R", "AR-L", "AF°", "L-R"):
            assert name in produced


class TestTopologicalClassifier:
    @pytest.fixture
    def classifier(self):
        rels = RelationshipSet()
        rels.set_p2c(provider=1, customer=2)    # 1, 2 transits
        rels.set_p2c(provider=2, customer=3)    # 3 stub
        rels.set_p2c(provider=7, customer=8)    # 7 = listed T1
        rels.set_p2p(9, 1)                      # 9 = listed hypergiant
        lists = ExternalLists(tier1=frozenset({7}), hypergiants=frozenset({9}))
        return TopologicalClassifier(lists, rels, universe=[1, 2, 3, 7, 8, 9])

    def test_node_classes(self, classifier):
        assert classifier.as_class(7) == "T1"
        assert classifier.as_class(9) == "H"
        assert classifier.as_class(1) == "TR"
        assert classifier.as_class(3) == "S"

    def test_link_classes_paper_order(self, classifier):
        assert classifier.classify((1, 2)) == "TR°"
        assert classifier.classify((3, 1)) == "S-TR"
        assert classifier.classify((7, 1)) == "T1-TR"
        assert classifier.classify((3, 7)) == "S-T1"
        assert classifier.classify((9, 1)) == "H-TR"
        assert classifier.classify((9, 3)) == "H-S"
        assert classifier.classify((9, 7)) == "H-T1"
        assert classifier.classify((3, 8)) == "S°"

    def test_hypergiant_precedence_over_tier1(self):
        rels = RelationshipSet()
        rels.set_p2c(provider=1, customer=2)
        lists = ExternalLists(tier1=frozenset({1}), hypergiants=frozenset({1}))
        classifier = TopologicalClassifier(lists, rels)
        assert classifier.as_class(1) == "H"

    def test_transit_internal_helper(self, classifier):
        links = [(1, 2), (3, 1), (7, 1)]
        assert transit_internal_links(classifier, links) == [(1, 2)]


class TestScenarioClassifiers:
    def test_class_counts_match_between_views(self, scenario):
        """Every inferred link gets exactly one class per classifier."""
        regional = scenario.regional_classifier()
        topological = scenario.topological_classifier()
        links = scenario.inferred_links()
        regional_total = sum(
            len(v) for v in regional.classify_links(links).values()
        )
        topo_total = sum(
            len(v) for v in topological.classify_links(links).values()
        )
        assert topo_total == len(links)
        assert regional_total <= len(links)  # unmappable ASNs drop out
        assert regional_total >= 0.95 * len(links)
