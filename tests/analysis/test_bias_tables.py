"""Tests for the bias profiles (Fig 1-2) and validation tables (Tab 1-3)."""

import pytest

from repro.analysis.bias import bias_profile
from repro.analysis.tables import CellColour, build_table
from repro.topology.graph import RelType


class TestCellColour:
    def test_thresholds_match_paper(self):
        assert CellColour.grade(0.99, 0.98) is CellColour.GREEN
        assert CellColour.grade(0.98, 0.98) is CellColour.NEUTRAL
        assert CellColour.grade(0.969, 0.98) is CellColour.YELLOW
        assert CellColour.grade(0.92, 0.98) is CellColour.ORANGE
        assert CellColour.grade(0.85, 0.98) is CellColour.RED

    def test_marks_distinct(self):
        marks = {colour.mark() for colour in CellColour}
        assert len(marks) == len(CellColour)


class TestBiasProfile:
    def test_shares_sum_to_one(self, scenario):
        profile = scenario.regional_bias()
        assert sum(c.share for c in profile.classes) == pytest.approx(1.0)

    def test_sorted_by_share(self, scenario):
        profile = scenario.regional_bias()
        shares = [c.share for c in profile.classes]
        assert shares == sorted(shares, reverse=True)

    def test_coverage_bounds(self, scenario):
        for profile in (scenario.regional_bias(), scenario.topological_bias()):
            for c in profile.classes:
                assert 0.0 <= c.coverage <= 1.0
                assert c.n_validated <= c.n_links

    def test_by_name(self, scenario):
        profile = scenario.topological_bias()
        by_name = profile.by_name()
        assert "S-TR" in by_name
        assert by_name["S-TR"].n_links == max(c.n_links for c in profile.classes)

    def test_coverage_spread_positive(self, scenario):
        """The paper's point: coverage is wildly uneven across classes."""
        assert scenario.regional_bias().coverage_spread() > 0.2
        assert scenario.topological_bias().coverage_spread() > 0.2

    def test_classifier_none_links_dropped(self, scenario):
        profile = bias_profile(
            scenario.inferred_links(),
            lambda key: None,
            scenario.validation,
        )
        assert profile.classes == []

    def test_mismatch_classes_detects_lacnic(self, scenario):
        """L° holds a real share of links but (almost) no validation."""
        mismatches = scenario.regional_bias().mismatch_classes(
            min_share=0.03, max_coverage=0.02
        )
        assert any(c.class_name == "L°" for c in mismatches)


class TestValidationTable:
    @pytest.fixture(scope="class")
    def table(self, scenario):
        return scenario.validation_table("asrank")

    def test_total_row(self, table):
        assert table.total.class_name == "Total°"
        assert table.total.n_validated > 100

    def test_rows_have_colours(self, table):
        assert table.rows
        for row in table.rows:
            assert isinstance(row.colour_mcc, CellColour)

    def test_min_class_links_respected(self, scenario):
        table = scenario.validation_table("asrank", min_class_links=10**9)
        assert table.rows == []

    def test_row_lookup(self, table):
        name = table.rows[0].metrics.class_name
        assert table.row(name) is table.rows[0]
        assert table.row("NOPE") is None
        assert table.metrics("Total°") is table.total

    def test_worst_p2p_classes(self, table):
        worst = table.worst_p2p_classes(3)
        assert len(worst) <= 3
        values = [m.ppv_p2p for m in worst]
        assert values == sorted(values)

    def test_lc_counts_stable_across_algorithms(self, scenario):
        """Tables 1-3 share the same validated link counts per class
        because the classes come from one (ASRank-based) topology view."""
        t_asrank = scenario.validation_table("asrank")
        t_gao = scenario.validation_table("gao")
        for row in t_asrank.rows:
            other = t_gao.row(row.metrics.class_name)
            if other is None:
                continue
            assert other.metrics.n_validated == row.metrics.n_validated
