"""Tests for the §6.1 case study and the text reporting layer."""

import pytest

from repro.analysis.casestudy import (
    concentration_by_clique_member,
    triplet_evidence,
    wrong_p2p_links,
)
from repro.analysis.report import (
    render_bias_figure,
    render_class_shares,
    render_imbalance_heatmaps,
    render_sampling_figure,
    render_validation_table,
)
from repro.analysis.sampling import sampling_experiment
from repro.topology.graph import RelType


class TestCaseStudyPrimitives:
    def test_wrong_p2p_links(self, scenario):
        links = scenario.class_links("T1-TR")
        wrong = wrong_p2p_links(links, scenario.infer("asrank"), scenario.validation)
        for key in wrong:
            assert scenario.validation.rel_of(key) is RelType.P2C
            assert scenario.infer("asrank").rel_of(*key) is RelType.P2P

    def test_concentration(self):
        counts = concentration_by_clique_member(
            [(174, 5), (174, 6), (701, 9)], clique=[174, 701]
        )
        assert counts == {174: 2, 701: 1}

    def test_triplet_evidence(self, scenario):
        corpus = scenario.corpus
        some = next(iter(corpus.triplets()))
        left, middle, right = some
        assert triplet_evidence(corpus, [left], middle, right)
        assert not triplet_evidence(corpus, [middle], middle, right)


class TestCaseStudyEndToEnd:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return scenario.case_study("asrank")

    def test_focus_member_is_clique(self, scenario, result):
        assert result.focus_member in set(
            scenario.algorithm("asrank").clique_
        ) | {scenario.topology.cogent_asn}

    def test_targets_belong_to_focus(self, result):
        for target in result.targets:
            assert result.focus_member in target.key
            assert target.other == target.key[0] or target.other == target.key[1]

    def test_no_clique_triplets_for_targets(self, result):
        """§6.1: no C|focus|X triplet exists for any target link."""
        assert not any(t.has_clique_triplet for t in result.targets)

    def test_looking_glass_explains_targets(self, result):
        """Targets are either confirmed partial transit (the no-export
        community is on the received routes) or stale validation."""
        if not result.targets:
            pytest.skip("no focus-member targets in this scenario")
        explained = result.n_partial_transit_confirmed + result.n_stale_validation
        assert explained >= 0.7 * len(result.targets)

    def test_share_accounting(self, result):
        assert 0.0 <= result.focus_share <= 1.0
        assert sum(result.per_member_counts.values()) >= result.n_wrong


class TestReportRendering:
    def test_bias_figure(self, scenario):
        text = render_bias_figure(scenario.regional_bias(), "Figure 1")
        assert "Figure 1" in text
        assert "validation coverage" in text
        assert "L°" in text

    def test_class_shares(self, scenario):
        text = render_class_shares(scenario.topological_bias())
        assert "S-TR" in text and "coverage" in text

    def test_validation_table(self, scenario):
        text = render_validation_table(scenario.validation_table("asrank"))
        assert "Total°" in text
        assert "PPV_P" in text and "MCC" in text

    def test_heatmaps(self, scenario):
        text = render_imbalance_heatmaps(
            scenario.imbalance_heatmaps("transit_degree")
        )
        assert "inference" in text and "validation" in text
        assert "bottom-left mass" in text

    def test_sampling_figure(self, scenario):
        result = sampling_experiment(
            scenario.class_links("TR°"),
            scenario.infer("asrank"),
            scenario.validation,
            class_name="TR°",
            sizes_percent=[50, 99],
            repetitions=5,
            seed=0,
        )
        text = render_sampling_figure(result, "mcc")
        assert "TR°" in text and "median" in text
