"""Tests for the machine-readable results bundle."""

import json

import pytest

from repro.analysis.export import (
    load_results_bundle,
    results_bundle,
    write_results_bundle,
)


@pytest.fixture(scope="module")
def bundle(scenario):
    return results_bundle(scenario, algorithms=("asrank", "gao"))


class TestResultsBundle:
    def test_sections_present(self, bundle):
        for key in ("scenario", "fig1_regional", "fig2_topological",
                    "fig3_transit_degree", "tables", "sec42_cleaning",
                    "sec61_casestudy"):
            assert key in bundle

    def test_json_serialisable(self, bundle):
        text = json.dumps(bundle)
        assert "fig1_regional" in text

    def test_shares_sum_to_one(self, bundle):
        total = sum(row["share"] for row in bundle["fig1_regional"])
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_tables_have_requested_algorithms(self, bundle):
        assert set(bundle["tables"]) == {"asrank", "gao"}
        assert bundle["tables"]["asrank"]["total"]["class"] == "Total°"

    def test_heatmap_dimensions(self, bundle):
        heatmap = bundle["fig3_transit_degree"]
        assert len(heatmap["inference"]) == len(heatmap["validation"])
        assert len(heatmap["x_edges"]) == len(heatmap["inference"][0])

    def test_casestudy_fields(self, bundle):
        case = bundle["sec61_casestudy"]
        assert case["n_wrong_p2p"] >= 0
        assert 0.0 <= case["focus_share"] <= 1.0


class TestWriteBundle:
    def test_round_trip(self, scenario, tmp_path):
        directory = write_results_bundle(
            scenario, tmp_path / "results", algorithms=("asrank",)
        )
        loaded = load_results_bundle(directory)
        assert loaded["scenario"]["seed"] == scenario.config.seed
        assert (directory / "fig1_regional.csv").exists()
        assert (directory / "table_asrank.csv").exists()

    def test_csv_headers(self, scenario, tmp_path):
        directory = write_results_bundle(
            scenario, tmp_path / "results", algorithms=("asrank",)
        )
        header = (directory / "table_asrank.csv").read_text().splitlines()[0]
        assert header.startswith("class,ppv_p2p,tpr_p2p")
