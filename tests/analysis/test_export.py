"""Tests for the machine-readable results bundle."""

import json

import pytest

from repro.analysis.export import (
    load_results_bundle,
    results_bundle,
    write_results_bundle,
)


@pytest.fixture(scope="module")
def bundle(scenario):
    return results_bundle(scenario, algorithms=("asrank", "gao"))


class TestResultsBundle:
    def test_sections_present(self, bundle):
        for key in ("scenario", "fig1_regional", "fig2_topological",
                    "fig3_transit_degree", "tables", "sec42_cleaning",
                    "sec61_casestudy"):
            assert key in bundle

    def test_json_serialisable(self, bundle):
        text = json.dumps(bundle)
        assert "fig1_regional" in text

    def test_shares_sum_to_one(self, bundle):
        total = sum(row["share"] for row in bundle["fig1_regional"])
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_tables_have_requested_algorithms(self, bundle):
        assert set(bundle["tables"]) == {"asrank", "gao"}
        assert bundle["tables"]["asrank"]["total"]["class"] == "Total°"

    def test_heatmap_dimensions(self, bundle):
        heatmap = bundle["fig3_transit_degree"]
        assert len(heatmap["inference"]) == len(heatmap["validation"])
        assert len(heatmap["x_edges"]) == len(heatmap["inference"][0])

    def test_casestudy_fields(self, bundle):
        case = bundle["sec61_casestudy"]
        assert case["n_wrong_p2p"] >= 0
        assert 0.0 <= case["focus_share"] <= 1.0


class TestWriteBundle:
    def test_round_trip(self, scenario, tmp_path):
        directory = write_results_bundle(
            scenario, tmp_path / "results", algorithms=("asrank",)
        )
        loaded = load_results_bundle(directory)
        assert loaded["scenario"]["seed"] == scenario.config.seed
        assert (directory / "fig1_regional.csv").exists()
        assert (directory / "table_asrank.csv").exists()

    def test_csv_headers(self, scenario, tmp_path):
        directory = write_results_bundle(
            scenario, tmp_path / "results", algorithms=("asrank",)
        )
        header = (directory / "table_asrank.csv").read_text().splitlines()[0]
        assert header.startswith("class,ppv_p2p,tpr_p2p")


class TestByteStability:
    """The DET002 contract, locked end to end: two independent builds
    of the same config must serialise to byte-identical artifacts.

    This is the golden property behind the `repro lint` DET002 rule —
    no set/dict-view iteration order may leak into bundle files or the
    shapes the query service shares with them (profile_rows /
    metrics_row / table_dict all feed both)."""

    def test_bundle_files_byte_identical_across_builds(self, tmp_path):
        from repro import small_scenario

        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        write_results_bundle(small_scenario(seed=11), first_dir,
                             algorithms=("asrank",))
        write_results_bundle(small_scenario(seed=11), second_dir,
                             algorithms=("asrank",))
        names = sorted(p.name for p in first_dir.iterdir())
        assert names == sorted(p.name for p in second_dir.iterdir())
        for name in names:
            assert (first_dir / name).read_bytes() == \
                (second_dir / name).read_bytes(), name

    def test_bundle_json_stable_under_repeated_dump(self, bundle):
        first = json.dumps(bundle, indent=2, sort_keys=True)
        second = json.dumps(
            json.loads(first), indent=2, sort_keys=True
        )
        assert first == second
