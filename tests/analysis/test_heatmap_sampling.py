"""Tests for the imbalance heatmaps (Fig 3/7-9) and sampling (Fig 4-6)."""

import pytest

from repro.analysis.heatmap import METRIC_CAPS, build_heatmaps, metric_values
from repro.analysis.sampling import (
    iqr_widening,
    sampling_experiment,
    trend_slope,
)


class TestMetricValues:
    def test_all_metrics_computable(self, scenario):
        rels = scenario.infer("asrank")
        for metric in METRIC_CAPS:
            values = metric_values(metric, scenario.corpus, rels=rels)
            assert values, f"no values for {metric}"
            assert all(v >= 0 for v in values.values())

    def test_ppdc_requires_rels(self, scenario):
        with pytest.raises(ValueError):
            metric_values("ppdc", scenario.corpus)

    def test_unknown_metric(self, scenario):
        with pytest.raises(ValueError):
            metric_values("nope", scenario.corpus)


class TestHeatmaps:
    def test_histogram_pair(self, scenario):
        heatmaps = scenario.imbalance_heatmaps("transit_degree")
        assert heatmaps.inference.total >= heatmaps.validation.total
        assert heatmaps.validation.total > 0

    def test_validation_is_subset(self, scenario):
        heatmaps = scenario.imbalance_heatmaps("transit_degree")
        # Every validation cell count is bounded by the inference count.
        assert (heatmaps.validation.counts <= heatmaps.inference.counts).all()

    def test_inference_mass_bottom_left(self, scenario):
        """The paper's Figure 3 shape: inferred TR° links concentrate
        between small transit ASes."""
        heatmaps = scenario.imbalance_heatmaps("transit_degree")
        corner_inf, _ = heatmaps.corner_masses(0.3, 0.3)
        assert corner_inf > 0.4

    def test_validation_less_concentrated(self, scenario):
        # At test scale the degrees are small, so validation can at
        # most match the inference concentration; the strict inequality
        # (the paper's Figure 3 message) is asserted at paper scale by
        # benchmarks/test_fig3_transit_degree.py.
        heatmaps = scenario.imbalance_heatmaps("transit_degree")
        corner_inf, corner_val = heatmaps.corner_masses(0.3, 0.3)
        assert corner_val <= corner_inf

    def test_mismatch_positive(self, scenario):
        heatmaps = scenario.imbalance_heatmaps("transit_degree")
        assert heatmaps.mismatch() > 0

    def test_ppdc_no_vp_skips_vp_links(self, scenario):
        plain = scenario.imbalance_heatmaps("ppdc")
        no_vp = scenario.imbalance_heatmaps("ppdc_no_vp")
        assert no_vp.inference.total < plain.inference.total

    def test_unknown_caps_rejected(self, scenario):
        with pytest.raises(ValueError):
            build_heatmaps(
                "custom",
                [],
                {},
                scenario.validation,
            )


class TestSampling:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        links = scenario.class_links("TR°")
        return sampling_experiment(
            links,
            scenario.infer("asrank"),
            scenario.validation,
            class_name="TR°",
            sizes_percent=range(50, 100, 10),
            repetitions=20,
            seed=1,
        )

    def test_point_counts(self, result):
        assert len(result.points) == 5 * 20
        assert result.sizes() == [50, 60, 70, 80, 90]

    def test_metrics_bounded(self, result):
        for point in result.points:
            assert 0.0 <= point.ppv_p2p <= 1.0
            assert 0.0 <= point.tpr_p2p <= 1.0
            assert -1.0 <= point.mcc <= 1.0

    def test_no_trend(self, result):
        """Appendix A's conclusion: medians are flat in sample size."""
        for metric in ("ppv_p2p", "tpr_p2p", "mcc"):
            slope = trend_slope(result.median_series(metric))
            assert abs(slope) < 0.003, f"{metric} trends with sample size"

    def test_variance_grows_when_smaller(self, result):
        assert iqr_widening(result, "mcc") >= 0

    def test_full_size_has_no_variance(self, scenario):
        links = scenario.class_links("TR°")
        result = sampling_experiment(
            links,
            scenario.infer("asrank"),
            scenario.validation,
            class_name="TR°",
            sizes_percent=[100],
            repetitions=5,
            seed=2,
        )
        values = {p.mcc for p in result.points}
        assert len(values) == 1

    def test_empty_class_rejected(self, scenario):
        with pytest.raises(ValueError):
            sampling_experiment(
                [], scenario.infer("asrank"), scenario.validation, "empty"
            )

    def test_trend_slope_degenerate(self):
        assert trend_slope([]) == 0.0
        assert trend_slope([(50, 1.0)]) == 0.0
        assert trend_slope([(50, 1.0), (60, 1.0)]) == 0.0
