"""Tests for the §7 evolution/re-sampling simulator, the bgpdump
format, and the command-line interface."""

import pytest

from repro import ScenarioConfig
from repro.cli import main, make_parser
from repro.datasets.bgpdump import read_path_corpus, write_path_corpus
from repro.evolution import (
    EvolutionConfig,
    EvolutionSimulator,
    MonthlySample,
    TemporalValidation,
)
from repro.topology.graph import RelType


def _evo_config() -> ScenarioConfig:
    config = ScenarioConfig.small(seed=31)
    config.measurement.n_churn_rounds = 1
    return config


class TestTemporalValidation:
    def test_first_sample_counts(self):
        tv = TemporalValidation()
        tv.add_month(0, {(1, 2): RelType.P2P})
        assert tv.unique_samples() == 1

    def test_gap_rule(self):
        tv = TemporalValidation()
        for month in range(6):
            tv.add_month(month, {(1, 2): RelType.P2P})
        # months 0, 3 count with gap 3; six identical monthly samples
        # collapse to two unique ones.
        assert tv.unique_samples(min_gap_months=3) == 2
        assert tv.unique_samples(min_gap_months=1) == 6

    def test_label_change_counts_immediately(self):
        tv = TemporalValidation()
        tv.add_month(0, {(1, 2): RelType.P2P})
        tv.add_month(1, {(1, 2): RelType.P2C})
        assert tv.unique_samples(min_gap_months=12) == 2
        assert tv.changed_links() == [(1, 2)]

    def test_single_snapshot_count(self):
        tv = TemporalValidation()
        tv.add_month(0, {(1, 2): RelType.P2P, (3, 4): RelType.P2C})
        tv.add_month(1, {(1, 2): RelType.P2P})
        assert tv.single_snapshot_count(0) == 2
        assert tv.single_snapshot_count(1) == 1


class TestEvolutionSimulator:
    @pytest.fixture(scope="class")
    def result(self):
        simulator = EvolutionSimulator(
            _evo_config(), EvolutionConfig(months=3)
        )
        return simulator.run()

    def test_monthly_series_lengths(self, result):
        assert len(result.monthly_label_counts) == 3
        assert len(result.monthly_visible_links) == 3

    def test_topology_actually_changes(self, result):
        """Some validated relationships must differ across months."""
        assert result.temporal.unique_samples(min_gap_months=99) >= max(
            result.monthly_label_counts
        )

    def test_oversampling_gain_above_one(self, result):
        """The §7 claim: re-sampling yields more unique data points
        than any single snapshot."""
        gain = result.oversampling_gain(min_gap_months=2)
        assert gain > 1.0

    def test_deterministic(self):
        a = EvolutionSimulator(_evo_config(), EvolutionConfig(months=2)).run()
        b = EvolutionSimulator(_evo_config(), EvolutionConfig(months=2)).run()
        assert a.monthly_label_counts == b.monthly_label_counts


class TestBgpdumpFormat:
    def test_round_trip(self, scenario, tmp_path):
        path = tmp_path / "paths.txt"
        n_written = write_path_corpus(scenario.corpus, path)
        assert n_written == len(scenario.corpus)
        loaded = read_path_corpus(path)
        assert loaded.stats() == scenario.corpus.stats()
        assert sorted(loaded.visible_links()) == sorted(
            scenario.corpus.visible_links()
        )

    def test_communities_preserved(self, scenario, tmp_path):
        path = tmp_path / "paths.txt"
        write_path_corpus(scenario.corpus, path)
        loaded = read_path_corpus(path)
        original = {
            (r.vp, r.origin, r.path): r.communities
            for r in scenario.corpus.routes_with_communities()
        }
        reloaded = {
            (r.vp, r.origin, r.path): r.communities
            for r in loaded.routes_with_communities()
        }
        assert original == reloaded

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3\n")  # no separator
        with pytest.raises(ValueError):
            read_path_corpus(bad)


class TestCli:
    def test_parser_covers_commands(self):
        parser = make_parser()
        for command in ("figures", "table", "casestudy", "build", "evolve"):
            args = parser.parse_args(
                [command, "asrank"] if command == "table" else [command]
            )
            assert args.command == command

    def test_table_command(self, capsys):
        code = main([
            "table", "asrank", "--ases", "320", "--vps", "40",
            "--seed", "7", "--churn-rounds", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Total°" in out and "PPV_P" in out

    def test_build_command(self, tmp_path, capsys):
        code = main([
            "build", "--out", str(tmp_path / "artifacts"),
            "--ases", "320", "--vps", "40", "--seed", "7",
            "--churn-rounds", "0",
        ])
        assert code == 0
        out_dir = tmp_path / "artifacts"
        for name in ("as-rel.txt", "as2org.txt", "as-numbers.csv", "paths.txt"):
            assert (out_dir / name).exists()
        assert (out_dir / "delegations").is_dir()

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["table", "magic"])
