"""The vectorized ``:batch`` path vs the per-key oracle, byte for byte.

``ScenarioView.batch_payloads`` (pack → ``searchsorted``) must be
indistinguishable on the wire from ``batch_payloads_perkey`` (the
pre-vectorization dict walk, kept exactly for this comparison): same
records, same order, same ``n_unknown``, same serialised bytes — across
seeds, shuffled/reversed pairs, unknown links, negative and oversized
ASNs, and the self-loop error contract.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import ScenarioConfig
from repro.scenario import build_scenario
from repro.service import ReproService, ServiceClient, serve_in_thread
from repro.service.http import json_response
from repro.service.query import ScenarioView

SEEDS = (3, 5, 11)


@pytest.fixture(scope="module", params=SEEDS)
def view(request):
    built = ScenarioView(
        build_scenario(ScenarioConfig.small(seed=request.param))
    )
    built.build_rel_index("asrank")
    return built


def _mixed_pairs(view: ScenarioView, seed: int) -> list:
    rng = random.Random(seed)
    visible = view._visible_sorted
    known = [list(key) for key in rng.sample(visible, min(64, len(visible)))]
    reversed_known = [[b, a] for a, b in known[:16]]
    unknown = [
        [999_999, 1],
        [1, 2_000_000],
        [0, 4_294_967_295],
        [-3, 7],
        [-1, -2],
        [2**40, 2],
        [4_294_967_296, 12],
    ]
    pairs = known + reversed_known + unknown
    rng.shuffle(pairs)
    return pairs


def test_batch_matches_perkey_bytes(view):
    pairs = _mixed_pairs(view, seed=0)
    vec, vec_unknown = view.batch_payloads("asrank", pairs)
    oracle, oracle_unknown = view.batch_payloads_perkey("asrank", pairs)
    assert vec_unknown == oracle_unknown
    # Full response envelopes, serialised exactly as the server does.
    envelope = {
        "scenario": "deadbeef0000",
        "algorithm": "asrank",
        "count": len(pairs),
        "n_unknown": vec_unknown,
        "results": vec,
    }
    oracle_envelope = dict(envelope, n_unknown=oracle_unknown,
                           results=oracle)
    assert json_response(200, envelope) == json_response(
        200, oracle_envelope
    )


def test_batch_unknown_only(view):
    pairs = [[987_654, 321], [5, 999_888_777]]
    vec, n_unknown = view.batch_payloads("asrank", pairs)
    oracle, oracle_unknown = view.batch_payloads_perkey("asrank", pairs)
    assert n_unknown == oracle_unknown == 2
    assert json.dumps(vec, sort_keys=True) == json.dumps(
        oracle, sort_keys=True
    )
    assert all(not record["visible"] for record in vec)


def test_batch_empty(view):
    assert view.batch_payloads("asrank", []) == ([], 0)


def test_batch_huge_int_fallback(view):
    # > int64: numpy refuses the array; the scalar fallback must still
    # agree with the oracle byte for byte.
    pairs = [[2**70, 3], list(view._visible_sorted[0])]
    vec, n_unknown = view.batch_payloads("asrank", pairs)
    oracle, oracle_unknown = view.batch_payloads_perkey("asrank", pairs)
    assert n_unknown == oracle_unknown == 1
    assert json.dumps(vec, sort_keys=True) == json.dumps(
        oracle, sort_keys=True
    )


def test_batch_self_loop_raises_like_perkey(view):
    with pytest.raises(ValueError, match="self-loop link at AS5"):
        view.batch_payloads("asrank", [[5, 5]])
    with pytest.raises(ValueError, match="self-loop link at AS5"):
        view.batch_payloads_perkey("asrank", [[5, 5]])


def test_batch_too_large_shape():
    """The 413 contract fires before any scenario is even resolved."""
    service = ReproService(pool_size=1)
    with serve_in_thread(service) as live:
        client = ServiceClient(port=live.port)
        status, body = client.request_bytes(
            "POST", "/v1/rel/asrank:batch",
            {"links": [[1, 2]] * 10_001},
        )
        client.close()
    assert status == 413
    payload = json.loads(body)
    assert payload["error"]["code"] == "batch_too_large"
    assert "10000" in payload["error"]["message"]
