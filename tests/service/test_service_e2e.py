"""End-to-end service tests over a real ephemeral socket.

One module-scoped server holds the small seed-7 scenario; every
relationship the HTTP API serves is cross-checked against the in-process
``Scenario.infer`` results (the acceptance criterion of the service PR).
Separate short-lived servers cover LRU eviction at pool size 1,
single-flight admission under thread concurrency, and event-loop
responsiveness while a build is in flight.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

import pytest

from repro import small_scenario
from repro.analysis.export import profile_rows, table_dict
from repro.service import ReproService, ServiceClient, ServiceError, serve_in_thread
from repro.service.query import REL_NAMES

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def server() -> Iterator[ReproService]:
    service = ReproService(pool_size=2)
    with serve_in_thread(service) as running:
        yield running


@pytest.fixture(scope="module")
def client(server: ReproService) -> Iterator[ServiceClient]:
    with ServiceClient(port=server.port) as instance:
        yield instance


@pytest.fixture(scope="module")
def admitted(client: ServiceClient) -> dict:
    """The seed-7 small scenario, built once through the API."""
    return client.build_scenario(preset="small", seed=7)


def expected_rel_name(scenario, algorithm, key):
    rel = scenario.infer(algorithm).rel_of(*key)
    return REL_NAMES[rel] if rel is not None else None


# ---------------------------------------------------------------------------
# liveness + admission
# ---------------------------------------------------------------------------

def test_healthz(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0


def test_build_response_shape(admitted, scenario):
    assert admitted["built"] is True
    assert admitted["seed"] == 7
    assert admitted["stats"]["n_inferred_links"] == len(
        scenario.inferred_links()
    )
    assert admitted["stats"]["n_validated_links"] == len(scenario.validation)
    assert "asrank" in admitted["algorithms_indexed"]
    assert len(admitted["sample_links"]) == 5


def test_rebuild_request_is_a_pool_hit(client, admitted):
    again = client.build_scenario(preset="small", seed=7)
    assert again["scenario"] == admitted["scenario"]
    assert again["built"] is False
    assert again["pool"]["builds"] == admitted["pool"]["builds"]


def test_scenarios_listing(client, admitted):
    listing = client.scenarios()
    assert admitted["scenario"] in [
        entry["scenario"] for entry in listing["scenarios"]
    ]
    assert listing["default"] == admitted["scenario"]
    assert listing["capacity"] == 2


# ---------------------------------------------------------------------------
# the acceptance criterion: point + batch queries == Scenario.infer,
# with zero builds across >= 1000 point lookups
# ---------------------------------------------------------------------------

def test_point_queries_match_inprocess_for_every_link(
    client, admitted, scenario
):
    links = scenario.inferred_links()
    assert links, "small scenario must expose inferred links"
    before = client.metrics()

    queried = 0
    index = 0
    while queried < max(1000, len(links)):
        key = links[index % len(links)]
        record = client.rel("asrank", key[0], key[1])
        assert (record["as1"], record["as2"]) == key
        assert record["relationship"] == expected_rel_name(
            scenario, "asrank", key
        ), f"mismatch at {key}"
        queried += 1
        index += 1

    after = client.metrics()
    # O(1) serving: a thousand point queries ran zero scenario builds
    # and zero new inference/index computations.
    assert after["pool"]["builds"] == before["pool"]["builds"]
    assert after["indexes_built"] == before["indexes_built"]
    assert (
        after["requests"]["total"] >= before["requests"]["total"] + queried
    )


def test_batch_queries_match_inprocess(client, admitted, scenario):
    links = scenario.inferred_links()
    response = client.rel_batch("asrank", links)
    assert response["count"] == len(links)
    assert response["n_unknown"] == 0
    for key, record in zip(links, response["results"]):
        assert (record["as1"], record["as2"]) == key
        assert record["visible"] is True
        assert record["relationship"] == expected_rel_name(
            scenario, "asrank", key
        )


def test_batch_marks_unknown_links(client, admitted):
    response = client.rel_batch("asrank", [[999999, 999998]])
    assert response["n_unknown"] == 1
    record = response["results"][0]
    assert record["visible"] is False
    assert record["relationship"] is None


def test_second_algorithm_served_and_consistent(client, admitted, scenario):
    links = scenario.inferred_links()[:25]
    response = client.rel_batch("gao", links)
    for key, record in zip(links, response["results"]):
        assert record["relationship"] == expected_rel_name(
            scenario, "gao", key
        )


# ---------------------------------------------------------------------------
# adjacency, bias, tables, case study
# ---------------------------------------------------------------------------

def test_neighbors_match_corpus(client, admitted, scenario):
    asn = admitted["sample_links"][0][0]
    payload = client.neighbors(asn)
    expected = sorted(
        key[0] if key[1] == asn else key[1]
        for key in scenario.corpus.visible_links()
        if asn in key
    )
    assert payload["neighbors"] == expected
    assert payload["degree"] == len(expected)
    assert payload["transit_degree"] == scenario.corpus.transit_degree(asn)


def test_bias_report_matches_inprocess(client, admitted, scenario):
    payload = client.bias("asrank")
    assert payload["regional"] == profile_rows(scenario.regional_bias())
    assert payload["topological"] == profile_rows(scenario.topological_bias())
    assert payload["scenario"] == admitted["scenario"]


def test_table_matches_inprocess(client, admitted, scenario):
    payload = client.table("asrank")
    assert payload["table"] == table_dict(scenario.validation_table("asrank"))


def test_casestudy_summary(client, admitted, scenario):
    payload = client.casestudy("asrank", "T1-TR")
    result = scenario.case_study("asrank", "T1-TR")
    assert payload["n_wrong_p2p"] == result.n_wrong
    assert payload["focus_member"] == result.focus_member
    assert payload["n_targets"] == len(result.targets)


# ---------------------------------------------------------------------------
# error shapes: structured JSON, never a traceback
# ---------------------------------------------------------------------------

def expect_error(call, status, code):
    with pytest.raises(ServiceError) as excinfo:
        call()
    assert excinfo.value.status == status
    assert excinfo.value.code == code
    assert isinstance(excinfo.value.payload["error"]["message"], str)
    return excinfo.value


def test_404_shapes(client, admitted):
    expect_error(lambda: client.request("GET", "/nope"), 404, "not_found")
    expect_error(lambda: client.rel("nope", 1, 2), 404, "unknown_algorithm")
    expect_error(
        lambda: client.rel("asrank", 999999, 999998), 404, "unknown_link"
    )
    expect_error(lambda: client.neighbors(999999), 404, "unknown_asn")
    error = expect_error(
        lambda: client.rel("asrank", 1, 2, scenario="ffffffffffff"),
        404,
        "unknown_scenario",
    )
    assert admitted["scenario"] in error.details["pooled"]


def test_405_shape(client):
    expect_error(
        lambda: client.request("POST", "/healthz"), 405, "method_not_allowed"
    )


def test_400_shapes(client):
    expect_error(
        lambda: client.request("POST", "/v1/scenarios", {"preset": "huge"}),
        400,
        "invalid_preset",
    )
    expect_error(
        lambda: client.request("POST", "/v1/scenarios", {"bogus": 1}),
        400,
        "unknown_field",
    )
    expect_error(
        lambda: client.request(
            "POST", "/v1/scenarios", {"preset": "small", "ases": 3}
        ),
        400,
        "invalid_config",
    )
    expect_error(
        lambda: client.request(
            "POST", "/v1/scenarios", {"preset": "small", "seed": "x"}
        ),
        400,
        "invalid_config",
    )
    expect_error(
        lambda: client.request("POST", "/v1/rel/asrank:batch", {}),
        400,
        "invalid_body",
    )
    expect_error(
        lambda: client.request(
            "POST", "/v1/rel/asrank:batch", {"links": [[1]]}
        ),
        400,
        "invalid_body",
    )


def test_malformed_json_body_is_a_structured_400(server):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.request(
            "POST", "/v1/scenarios", body="{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        import json as json_module

        payload = json_module.loads(response.read())
        assert payload["error"]["code"] == "invalid_json"
    finally:
        conn.close()


def test_metrics_counters_move(client):
    before = client.metrics()
    client.healthz()
    client.healthz()
    after = client.metrics()
    assert after["requests"]["total"] >= before["requests"]["total"] + 3
    assert after["requests"]["by_route"]["GET /healthz"]["count"] >= 2
    assert after["latency_ms"]["count"] > before["latency_ms"]["count"]
    assert after["pool"]["capacity"] == 2


# ---------------------------------------------------------------------------
# pool behaviour through the API: eviction, single-flight, liveness
# ---------------------------------------------------------------------------

def test_lru_eviction_at_pool_size_one():
    service = ReproService(pool_size=1)
    with serve_in_thread(service) as running:
        with ServiceClient(port=running.port) as client:
            first = client.build_scenario(preset="small", seed=7)
            second = client.build_scenario(preset="small", seed=11)
            listing = client.scenarios()
            assert [entry["scenario"] for entry in listing["scenarios"]] == [
                second["scenario"]
            ]
            assert client.metrics()["pool"]["evictions"] == 1
            expect_error(
                lambda: client.rel(
                    "asrank", 1, 2, scenario=first["scenario"]
                ),
                404,
                "unknown_scenario",
            )


def test_concurrent_same_config_builds_once():
    service = ReproService(pool_size=2)
    with serve_in_thread(service) as running:
        results = []
        errors = []

        def build():
            try:
                with ServiceClient(port=running.port) as client:
                    results.append(
                        client.build_scenario(preset="small", seed=7)
                    )
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [threading.Thread(target=build) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 6
        assert len({result["scenario"] for result in results}) == 1
        with ServiceClient(port=running.port) as client:
            pool = client.metrics()["pool"]
        assert pool["builds"] == 1
        assert pool["coalesced"] >= 1


def test_healthz_stays_responsive_during_build():
    # Deterministic slow build: the builder blocks in the executor for
    # 2.5 s, returning the session's already-built small scenario.
    prebuilt = small_scenario()

    def slow_builder(config, workers=0, cache=None):
        time.sleep(2.5)
        return prebuilt

    service = ReproService(pool_size=1, builder=slow_builder)
    with serve_in_thread(service) as running:
        with ServiceClient(port=running.port) as prober:
            build_done = threading.Event()

            def build():
                with ServiceClient(port=running.port, timeout=120) as client:
                    client.build_scenario(preset="small", seed=7)
                build_done.set()

            builder_thread = threading.Thread(target=build)
            builder_thread.start()
            deadline = time.monotonic() + 2.0
            probes = 0
            try:
                while time.monotonic() < deadline:
                    started = time.monotonic()
                    health = prober.healthz()
                    elapsed = time.monotonic() - started
                    assert health["status"] == "ok"
                    assert elapsed < 1.0, (
                        f"healthz took {elapsed:.2f}s during a build"
                    )
                    probes += 1
                    time.sleep(0.1)
                # The probes all ran while the 2.5 s build was in flight.
                assert not build_done.is_set()
                assert probes >= 5
            finally:
                builder_thread.join(timeout=120)
            assert build_done.is_set()
