"""Unit tests for :class:`repro.service.pool.ScenarioPool`.

These run against an injected builder/view factory, so the LRU,
single-flight, and failure semantics are tested in milliseconds without
building real scenarios (the end-to-end suite covers those).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, List

import pytest

from repro.config import ScenarioConfig
from repro.service.pool import ScenarioPool, scenario_id


class DummyView:
    def __init__(self, scenario: Any):
        self.scenario = scenario


def make_pool(
    calls: List[int], capacity: int = 2, delay: float = 0.0, fail: bool = False
) -> ScenarioPool:
    def builder(config: ScenarioConfig, workers: int = 0, cache: Any = None):
        calls.append(config.seed)
        if delay:
            time.sleep(delay)
        if fail:
            raise RuntimeError(f"boom seed={config.seed}")
        return {"seed": config.seed}

    return ScenarioPool(
        capacity=capacity, builder=builder, view_factory=DummyView
    )


def test_scenario_id_is_canonical_fingerprint_prefix():
    config = ScenarioConfig.small(seed=3)
    assert scenario_id(config) == config.fingerprint()[:12]
    # Equal configs address the same pool slot.
    assert scenario_id(ScenarioConfig.small(seed=3)) == scenario_id(config)
    assert scenario_id(ScenarioConfig.small(seed=4)) != scenario_id(config)


def test_hit_returns_same_entry_without_rebuilding():
    calls: List[int] = []
    pool = make_pool(calls)

    async def scenario():
        first = await pool.get_or_build(ScenarioConfig.small(seed=3))
        second = await pool.get_or_build(ScenarioConfig.small(seed=3))
        return first, second

    first, second = asyncio.run(scenario())
    assert first is second
    assert calls == [3]
    assert pool.builds == 1
    assert pool.hits == 1
    assert pool.misses == 1
    pool.close()


def test_concurrent_same_config_triggers_exactly_one_build():
    calls: List[int] = []
    pool = make_pool(calls, delay=0.2)

    async def scenario():
        config = ScenarioConfig.small(seed=5)
        entries = await asyncio.gather(
            *(pool.get_or_build(config) for _ in range(6))
        )
        return entries

    entries = asyncio.run(scenario())
    assert calls == [5]
    assert pool.builds == 1
    assert pool.coalesced == 5
    assert len({id(entry) for entry in entries}) == 1
    pool.close()


def test_lru_eviction_at_capacity_one():
    calls: List[int] = []
    pool = make_pool(calls, capacity=1)

    async def scenario():
        first = await pool.get_or_build(ScenarioConfig.small(seed=1))
        second = await pool.get_or_build(ScenarioConfig.small(seed=2))
        return first, second

    first, second = asyncio.run(scenario())
    assert pool.evictions == 1
    assert len(pool) == 1
    assert first.scenario_id not in pool
    assert second.scenario_id in pool
    assert pool.latest() is second
    pool.close()


def test_lru_recency_decides_the_victim():
    calls: List[int] = []
    pool = make_pool(calls, capacity=2)

    async def scenario():
        a = await pool.get_or_build(ScenarioConfig.small(seed=1))
        await pool.get_or_build(ScenarioConfig.small(seed=2))
        # Touch the older entry, then admit a third: seed=2 must go.
        assert pool.get(a.scenario_id) is a
        await pool.get_or_build(ScenarioConfig.small(seed=3))
        return a

    a = asyncio.run(scenario())
    assert a.scenario_id in pool
    assert scenario_id(ScenarioConfig.small(seed=2)) not in pool
    assert scenario_id(ScenarioConfig.small(seed=3)) in pool
    pool.close()


def test_failed_build_propagates_and_does_not_poison_the_pool():
    calls: List[int] = []
    pool = make_pool(calls, fail=True, delay=0.05)

    async def failing():
        config = ScenarioConfig.small(seed=9)
        results = await asyncio.gather(
            pool.get_or_build(config),
            pool.get_or_build(config),
            return_exceptions=True,
        )
        return results

    results = asyncio.run(failing())
    assert all(isinstance(result, RuntimeError) for result in results)
    assert calls == [9]  # the waiters shared the one failed build
    assert len(pool) == 0
    assert pool.builds_in_progress == 0

    # The failure is not cached: the next request builds again.
    async def retry():
        with pytest.raises(RuntimeError):
            await pool.get_or_build(ScenarioConfig.small(seed=9))

    asyncio.run(retry())
    assert calls == [9, 9]
    pool.close()


def test_unknown_id_lookup_counts_a_miss():
    calls: List[int] = []
    pool = make_pool(calls)
    assert pool.get("does-not-exist") is None
    assert pool.misses == 1
    assert pool.latest() is None
    pool.close()


def test_aclose_cancels_and_reaps_in_flight_builds():
    calls: List[int] = []
    pool = make_pool(calls, delay=0.3)

    async def scenario():
        waiter = asyncio.ensure_future(
            pool.get_or_build(ScenarioConfig.small(seed=9))
        )
        while pool.builds_in_progress == 0:
            await asyncio.sleep(0.01)
        await pool.aclose()
        assert pool.builds_in_progress == 0, "aclose must reap _building"
        with pytest.raises(asyncio.CancelledError):
            await waiter
        # The executor has been joined: no build thread outlives aclose,
        # so admission after shutdown cannot happen behind our back.
        assert len(pool) == 0

    asyncio.run(scenario())


def test_aclose_idles_cleanly_with_nothing_in_flight():
    pool = make_pool([])

    async def scenario():
        await pool.aclose()
        await pool.aclose()  # idempotent

    asyncio.run(scenario())


def test_sync_close_cancels_in_flight_builds():
    calls: List[int] = []
    pool = make_pool(calls, delay=0.3)

    async def scenario():
        waiter = asyncio.ensure_future(
            pool.get_or_build(ScenarioConfig.small(seed=9))
        )
        while pool.builds_in_progress == 0:
            await asyncio.sleep(0.01)
        pool.close()
        with pytest.raises(asyncio.CancelledError):
            await waiter

    asyncio.run(scenario())
