"""The closed-loop load generator and the worker-labelled metrics."""

from __future__ import annotations

import pytest

from repro.service import ReproService, serve_in_thread
from repro.service.loadgen import (
    DEFAULT_MIX,
    LoadgenPlan,
    parse_mix,
    prepare_plan,
    publish_result,
    run_loadgen,
)
from repro.utils.benchreport import load_bench_report


# ---------------------------------------------------------------------------
# mix parsing
# ---------------------------------------------------------------------------

def test_parse_mix():
    assert parse_mix("rel=4,batch=1") == {"rel": 4.0, "batch": 1.0}
    assert parse_mix("healthz") == {"healthz": 1.0}


@pytest.mark.parametrize("text", ["bogus=1", "rel=x", "rel=-1", "", "rel=0"])
def test_parse_mix_rejects(text):
    with pytest.raises(ValueError):
        parse_mix(text)


# ---------------------------------------------------------------------------
# a short real run
# ---------------------------------------------------------------------------

def test_loadgen_end_to_end(tmp_path):
    service = ReproService(pool_size=1)
    with serve_in_thread(service) as live:
        plan = prepare_plan(
            "127.0.0.1", live.port,
            preset="small", seed=7,
            batch_size=16, n_links=32,
        )
        assert plan.links and plan.asns
        result = run_loadgen(plan, concurrency=3, duration_s=1.0)
    assert result.total_requests > 0
    assert result.errors == 0
    assert result.throughput_rps > 0
    # Every endpoint in the mix reported p50/p99.
    for name in DEFAULT_MIX:
        assert name in result.latency_ms, result.latency_ms
        stats = result.latency_ms[name]
        assert stats["count"] > 0
        assert stats["p50"] <= stats["p99"] <= stats["max"] + 1e-9

    path = publish_result(str(tmp_path), "service_loadgen", result,
                          extra={"note": "test"})
    report = load_bench_report(path)
    assert report["benchmarks"]["service_loadgen"]["total_requests"] == (
        result.total_requests
    )
    assert report["note"] == "test"


def test_loadgen_is_deterministic_in_request_streams():
    """Equal (seed, task) pairs draw identical endpoint sequences."""
    from repro.utils.rng import child_rng, weighted_choice

    plan_mix = dict(DEFAULT_MIX)
    names = sorted(plan_mix)
    weights = [plan_mix[name] for name in names]

    def stream(seed, index, n=50):
        rng = child_rng(seed, f"loadgen-task-{index}")
        return [weighted_choice(rng, names, weights) for _ in range(n)]

    assert stream(0, 1) == stream(0, 1)
    assert stream(0, 1) != stream(0, 2)  # independent per-task streams


def test_loadgen_validates_arguments():
    plan = LoadgenPlan(
        host="127.0.0.1", port=1, scenario="x", algorithm="asrank",
        links=[(1, 2)], asns=[1], mix=dict(DEFAULT_MIX),
        batch_size=4, seed=0,
    )
    with pytest.raises(ValueError):
        run_loadgen(plan, concurrency=0)
    with pytest.raises(ValueError):
        run_loadgen(plan, duration_s=0)


# ---------------------------------------------------------------------------
# worker-labelled metrics
# ---------------------------------------------------------------------------

def test_metrics_reports_worker_label():
    import os

    service = ReproService(pool_size=1)
    snapshot = service.metrics.snapshot(service.pool)
    assert snapshot["worker"] == {"index": 0, "pid": os.getpid()}
    service.metrics.worker_index = 3
    assert service.metrics.snapshot()["worker"]["index"] == 3
    service.pool.close()
