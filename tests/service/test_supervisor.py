"""The pre-fork supervisor: fan-out, invariance, restarts, CLI guards.

The heavy tests drive a real ``repro serve --serve-workers 2`` child
process over a shared artifact cache and assert the multi-worker
contract: connections spread across ≥ 2 worker pids, every worker
returns byte-identical answers for the same request, a SIGKILLed worker
is replaced, and SIGTERM drains the whole tree with exit code 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.config import ScenarioConfig
from repro.scenario import build_scenario
from repro.pipeline.cache import ArtifactCache
from repro.service.client import ServiceClient
from repro.service.supervisor import Supervisor, reuseport_available

REPO_ROOT = Path(__file__).resolve().parents[2]


def subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


@pytest.fixture(scope="module")
def supervised(tmp_path_factory):
    """A 2-worker supervisor over a pre-warmed cache; yields (proc, port,
    scenario id, cache dir)."""
    cache_dir = tmp_path_factory.mktemp("supervisor-cache")
    config = ScenarioConfig.small(seed=7)
    # Pre-warm the shared cache so worker admissions are cheap and the
    # cross-worker resolution path has meta records to scan.
    build_scenario(config, cache=ArtifactCache(cache_dir))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--pool-size", "2",
            "--serve-workers", "2",
            "--cache", "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=subprocess_env(),
        text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        match = re.search(r"listening on http://[^:]+:(\d+)$", banner)
        assert match, f"unexpected banner: {banner!r}"
        port = int(match.group(1))
        client = ServiceClient(port=port, timeout=300.0)
        built = client.build_scenario(
            preset="small", seed=7, algorithms=["asrank"]
        )
        client.close()
        yield proc, port, built["scenario"], cache_dir
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)


def _worker_pids(port: int, attempts: int = 60) -> set:
    """Worker pids observed over many *fresh* connections."""
    pids = set()
    for _ in range(attempts):
        client = ServiceClient(port=port, timeout=60.0)
        pids.add(client.metrics()["worker"]["pid"])
        client.close()
        if len(pids) >= 2:
            break
    return pids


@pytest.mark.skipif(
    not reuseport_available(),
    reason="SO_REUSEPORT spread is kernel-dependent",
)
def test_connections_spread_across_workers(supervised):
    _proc, port, _sid, _cache_dir = supervised
    pids = _worker_pids(port)
    assert len(pids) >= 2, f"all connections landed on {pids}"


def test_workers_answer_byte_identically(supervised):
    """The same requests, landed on whichever worker accepts them,
    serialise to exactly the same bytes."""
    _proc, port, sid, _cache_dir = supervised
    # Only endpoints pinned to an explicit scenario id are invariant —
    # unpinned ones (e.g. the pool listing) legitimately reflect
    # per-worker pool state.
    requests = [
        ("POST", f"/v1/rel/asrank:batch?scenario={sid}",
         {"links": [[1, 2], [999_999, 1]]}),
        ("GET", f"/v1/table/asrank?scenario={sid}", None),
    ]
    for method, path, body in requests:
        seen = set()
        for _ in range(12):
            client = ServiceClient(port=port, timeout=300.0)
            status, payload = client.request_bytes(method, path, body)
            client.close()
            assert status == 200, payload
            seen.add(payload)
        assert len(seen) == 1, f"{path} diverged across workers"


def test_single_and_multi_worker_deployments_byte_identical(supervised):
    """Worker-count invariance across *deployments*: a 1-worker service
    over the same cache answers the identical request stream with the
    identical bytes as the 2-worker supervisor."""
    from repro.service import ReproService, serve_in_thread

    _proc, port, sid, cache_dir = supervised
    requests = [
        ("POST", f"/v1/rel/asrank:batch?scenario={sid}",
         {"links": [[1, 2], [2, 3], [999_999, 1]]}),
        ("GET", f"/v1/table/asrank?scenario={sid}", None),
        ("GET", f"/v1/bias/asrank?scenario={sid}", None),
    ]

    def stream(target_port: int) -> list:
        client = ServiceClient(port=target_port, timeout=300.0)
        try:
            return [
                client.request_bytes(method, path, body)
                for method, path, body in requests
            ]
        finally:
            client.close()

    single = ReproService(pool_size=2, cache=ArtifactCache(cache_dir))
    with serve_in_thread(single) as live:
        single_bodies = stream(live.port)
    multi_bodies = stream(port)
    assert single_bodies == multi_bodies


def test_sibling_worker_resolves_foreign_scenario(supervised):
    """A scenario admitted by one worker is served by every worker via
    the shared cache (worker-count invariance)."""
    _proc, port, sid, _cache_dir = supervised
    statuses = set()
    bodies = set()
    pids = set()
    for _ in range(16):
        client = ServiceClient(port=port, timeout=300.0)
        pids.add(client.metrics()["worker"]["pid"])
        status, body = client.request_bytes(
            "GET", f"/v1/as/1/neighbors?scenario={sid}"
        )
        client.close()
        statuses.add(status)
        bodies.add(body)
    # Whatever the answer is (the ASN may or may not be visible), every
    # worker must give the same one — never unknown_scenario.
    assert len(bodies) == 1
    payload = json.loads(next(iter(bodies)))
    if "error" in payload:
        assert payload["error"]["code"] != "unknown_scenario"


def test_killed_worker_is_restarted(supervised):
    proc, port, _sid, _cache_dir = supervised
    victim = next(iter(_worker_pids(port)))
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 30
    replaced = set()
    while time.monotonic() < deadline:
        try:
            replaced = _worker_pids(port, attempts=8)
        except (ConnectionError, OSError):
            time.sleep(0.2)
            continue
        if replaced and victim not in replaced:
            break
        time.sleep(0.2)
    assert replaced, "service stopped answering after a worker kill"
    assert victim not in replaced
    assert proc.poll() is None  # the supervisor itself survived


def test_sigterm_drains_cleanly(tmp_path):
    """A fresh supervisor exits 0 on SIGTERM without serving anything."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--pool-size", "1",
            "--serve-workers", "2",
            "--cache", "--cache-dir", str(tmp_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=subprocess_env(),
        text=True,
    )
    banner = proc.stdout.readline().strip()
    assert "listening on" in banner
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0


# ---------------------------------------------------------------------------
# CLI validation (no processes spawned)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("value", ["0", "-3"])
def test_serve_workers_must_be_positive(value, capsys):
    rc = cli.main(["serve", "--serve-workers", value, "--port", "0"])
    assert rc == 2
    assert "--serve-workers" in capsys.readouterr().err


def test_serve_workers_absurd_count_rejected(capsys):
    rc = cli.main(["serve", "--serve-workers", "100000", "--port", "0"])
    assert rc == 2
    assert "absurd" in capsys.readouterr().err


def test_multi_worker_requires_cache(capsys):
    rc = cli.main(["serve", "--serve-workers", "2", "--port", "0"])
    assert rc == 2
    assert "--cache" in capsys.readouterr().err


def test_supervisor_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="at least 1"):
        Supervisor(lambda: None, serve_workers=0)
