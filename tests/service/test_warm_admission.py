"""Zero-copy warm admission through the shared artifact cache.

Three contracts:

* a pool whose cache already holds a scenario admits it **warm**
  (``warm_admissions``/``cold_admissions`` counters, the scenario's
  ``corpus_from_cache`` flag, mmap-backed corpus sections);
* a warm-admitted scenario answers every query endpoint byte-identically
  to a cold-built one;
* loading a columnar corpus via mmap costs ~zero resident memory, while
  the deserialising path pays the full artifact size (the RSS-delta
  proof for "N workers share one page-cache-resident corpus").
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.columnar import (
    CorpusColumns,
    read_corpus_columns,
    write_corpus_columns,
)
from repro.scenario import build_scenario
from repro.service import ReproService, ServiceClient, serve_in_thread
from repro.service.pool import ScenarioPool, scenario_id

CONFIG = ScenarioConfig.small(seed=7)


@pytest.fixture(scope="module")
def primed_cache(tmp_path_factory):
    """A cache already holding seed-7's corpus/validation artifacts."""
    root = tmp_path_factory.mktemp("warm-cache")
    cache = ArtifactCache(root)
    scenario = build_scenario(CONFIG, cache=cache)
    assert not scenario.corpus_from_cache  # the priming build was cold
    return ArtifactCache(root)  # fresh instance, clean counters


def test_second_build_is_warm_and_mmapped(primed_cache):
    scenario = build_scenario(CONFIG, cache=primed_cache)
    assert scenario.corpus_from_cache
    backing = scenario.corpus.memory_report()["backing"]
    # Every non-empty section must be a file mapping, not a heap copy.
    assert backing["hops"] == "mmap"
    assert backing["offsets"] == "mmap"


def test_pool_counts_warm_vs_cold_admissions(primed_cache):
    async def admit(cache):
        pool = ScenarioPool(capacity=2, cache=cache)
        try:
            await pool.get_or_build(CONFIG)
            return pool.stats()
        finally:
            await pool.aclose()

    warm_stats = asyncio.run(admit(primed_cache))
    assert warm_stats["builds"] == 1
    assert warm_stats["warm_admissions"] == 1
    assert warm_stats["cold_admissions"] == 0

    cold_stats = asyncio.run(admit(None))
    assert cold_stats["warm_admissions"] == 0
    assert cold_stats["cold_admissions"] == 1


def test_cache_resolution_admits_foreign_scenario(primed_cache):
    """A scenario id this pool never saw resolves via cache meta."""
    sid = scenario_id(CONFIG)

    async def resolve():
        pool = ScenarioPool(capacity=2, cache=primed_cache)
        try:
            entry = await pool.admit_cached(sid)
            assert entry is not None
            assert entry.scenario_id == sid
            assert await pool.admit_cached("ffffffffffff") is None
            return pool.stats()
        finally:
            await pool.aclose()

    stats = asyncio.run(resolve())
    assert stats["cache_resolutions"] == 1
    assert stats["warm_admissions"] == 1


def test_warm_responses_byte_identical_to_cold(primed_cache):
    """Every endpoint answers the same bytes warm as cold."""
    cold = ReproService(pool_size=1)
    warm = ReproService(pool_size=1, cache=primed_cache)
    with serve_in_thread(cold) as cold_live, serve_in_thread(warm) as warm_live:
        responses = {}
        for label, live in (("cold", cold_live), ("warm", warm_live)):
            client = ServiceClient(port=live.port, timeout=300.0)
            built = client.build_scenario(
                preset="small", seed=7,
                algorithms=["asrank", "gao"],
            )
            sid = built["scenario"]
            a1, a2 = built["sample_links"][0]
            asn = a1
            paths = [
                ("GET", f"/v1/rel/asrank/{a1}/{a2}?scenario={sid}", None),
                ("GET", f"/v1/rel/gao/{a1}/{a2}?scenario={sid}", None),
                ("POST", f"/v1/rel/asrank:batch?scenario={sid}",
                 {"links": [[a1, a2], [a2, a1], [999_999, 1]]}),
                ("GET", f"/v1/as/{asn}/neighbors?scenario={sid}", None),
                ("GET", f"/v1/bias/asrank?scenario={sid}", None),
                ("GET", f"/v1/table/asrank?scenario={sid}", None),
                ("GET", f"/v1/casestudy?scenario={sid}", None),
                ("GET", "/v1/scenarios", None),
            ]
            responses[label] = [
                client.request_bytes(method, path, body)
                for method, path, body in paths
            ]
            client.close()
        # The warm pool really did come from the cache.
        assert warm.pool.warm_admissions == 1
        assert warm.pool.cold_admissions == 0
        assert cold.pool.cold_admissions == 1
    assert responses["cold"] == responses["warm"]


_RSS_PROBE = """
import gc, sys
from repro.pipeline.columnar import read_corpus_columns
import numpy as np

def rss_bytes():
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise SystemExit("VmRSS not found")

path, use_mmap = sys.argv[1], sys.argv[2] == "mmap"
gc.collect()
before = rss_bytes()
columns = read_corpus_columns(path, use_mmap=use_mmap)
delta = rss_bytes() - before
assert isinstance(columns.hops, np.memmap) == use_mmap
assert columns.backing()["hops"] == ("mmap" if use_mmap else "ram")
print(delta)
"""


@pytest.mark.skipif(
    not os.path.exists("/proc/self/status"),
    reason="RSS accounting needs /proc",
)
def test_mmap_load_is_zero_copy_by_rss(tmp_path):
    """Loading ``corpus.npc`` via mmap must not grow RSS by the file
    size; the deserialising path must.

    Each load runs in a fresh subprocess: in-process measurement is
    confounded by the allocator recycling already-resident pages.
    """
    import subprocess
    import sys

    n = 8_000_000  # ~32 MB of uint32 hops
    columns = CorpusColumns(
        hops=np.arange(n, dtype=np.uint32) % 65_536,
        offsets=np.arange(0, n + 1, 100, dtype=np.int64),
        comm_route=np.empty(0, dtype=np.int64),
        comm_owner=np.empty(0, dtype=np.uint32),
        comm_value=np.empty(0, dtype=np.int64),
    )
    path = tmp_path / "corpus.npc"
    write_corpus_columns(columns, path)
    size = columns.hops.nbytes
    del columns

    def probe(mode: str) -> int:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else src
        )
        result = subprocess.run(
            [sys.executable, "-c", _RSS_PROBE, str(path), mode],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        return int(result.stdout.strip())

    mmap_delta = probe("mmap")
    copy_delta = probe("copy")
    # Untouched mappings are address space, not resident memory; the
    # deserialising path pays for every byte.
    assert mmap_delta < size * 0.25, (mmap_delta, size)
    assert copy_delta > size * 0.5, (copy_delta, size)
