"""CLI wiring for the service: ``python -m repro``, ``repro serve``,
``repro cache list --json``, and the shared worker-count helper."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.datasets.asrel import RelationshipSet
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.parallel import resolve_workers

REPO_ROOT = Path(__file__).resolve().parents[2]


def subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


# ---------------------------------------------------------------------------
# python -m repro
# ---------------------------------------------------------------------------

def test_python_dash_m_repro_works():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "serve" in result.stdout
    assert "cache" in result.stdout


# ---------------------------------------------------------------------------
# repro cache list --json
# ---------------------------------------------------------------------------

def test_cache_list_json_empty(tmp_path, capsys):
    rc = cli.main(["cache", "list", "--json", "--cache-dir", str(tmp_path)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {
        "root": str(tmp_path),
        "total_size_bytes": 0,
        "entries": [],
    }


def test_cache_list_json_enumerates_entries(tmp_path, capsys):
    from repro.config import ScenarioConfig

    cache = ArtifactCache(root=tmp_path)
    config = ScenarioConfig.small(seed=7)
    rels = RelationshipSet()
    rels.set_p2c(10, 20)
    rels.set_p2p(10, 30)
    key = cache.scenario_key(config)
    cache.store_rels(key, "asrank", rels, config)

    rc = cli.main(["cache", "list", "--json", "--cache-dir", str(tmp_path)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["root"] == str(tmp_path)
    assert payload["total_size_bytes"] > 0
    (entry,) = payload["entries"]
    assert entry["key"] == key
    assert entry["seed"] == 7
    assert entry["n_ases"] == 320
    assert "rels-asrank.asrel" in entry["files"]


def test_cache_list_surfaces_locks_and_stragglers(tmp_path, capsys):
    from repro.config import ScenarioConfig

    cache = ArtifactCache(root=tmp_path)
    config = ScenarioConfig.small(seed=7)
    rels = RelationshipSet()
    rels.set_p2c(10, 20)
    key = cache.scenario_key(config)
    cache.store_rels(key, "asrank", rels, config)
    (tmp_path / key / "corpus.npc.4242.0.tmp").write_text("torn write")

    with cache.entry_lock(key):
        rc = cli.main(
            ["cache", "list", "--json", "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        (entry,) = json.loads(capsys.readouterr().out)["entries"]
        assert entry["locked"] is True
        assert entry["stragglers"] == 1

        rc = cli.main(["cache", "list", "--cache-dir", str(tmp_path)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "[locked]" in text
        assert "tmp straggler" in text

    rc = cli.main(["cache", "list", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "[locked]" not in capsys.readouterr().out


def test_cache_path_json(tmp_path, capsys):
    rc = cli.main(["cache", "path", "--json", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert json.loads(capsys.readouterr().out) == {"root": str(tmp_path)}


# ---------------------------------------------------------------------------
# shared worker-count normalisation
# ---------------------------------------------------------------------------

def test_resolve_workers_contract():
    assert resolve_workers(0) == 0            # serial
    assert resolve_workers(3) == 3            # literal
    assert resolve_workers(-1) >= 1           # CPU count
    assert resolve_workers(None) == resolve_workers(-1)


def test_serve_parser_defaults():
    parser = cli.make_parser()
    args = parser.parse_args(["serve", "--port", "0", "--workers", "-1"])
    assert args.func is cli.cmd_serve
    assert args.host == "127.0.0.1"
    assert args.pool_size == 4
    assert args.workers == -1
    # cmd_serve hands the raw value to the one shared helper.
    assert resolve_workers(args.workers) >= 1


# ---------------------------------------------------------------------------
# repro serve subprocess smoke (mirrors the CI step)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_serve_subprocess_smoke():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--pool-size", "1"],
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        match = re.search(r"listening on http://[^:]+:(\d+)$", line)
        assert match, f"unexpected banner: {line!r}"
        port = int(match.group(1))

        from repro.service.client import ServiceClient

        with ServiceClient(port=port, timeout=120) as client:
            assert client.healthz()["status"] == "ok"
            built = client.build_scenario(preset="small", seed=7)
            as1, as2 = built["sample_links"][0]
            record = client.rel("asrank", as1, as2)
            assert record["relationship"] in {"p2p", "p2c", "s2s", None}
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0


# ---------------------------------------------------------------------------
# repro corpus stats
# ---------------------------------------------------------------------------

def test_corpus_stats_json(capsys):
    rc = cli.main([
        "corpus", "stats", "--json", "--ases", "150", "--vps", "15",
        "--seed", "7", "--churn-rounds", "0",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    stats = payload["stats"]
    assert stats["n_routes"] > 0
    assert 0 < stats["n_vps"] <= 15
    # Intern-table sizes agree with the corpus counters.
    intern = payload["intern_tables"]
    assert intern["n_links"] == stats["n_visible_links"]
    assert intern["n_ases"] == stats["n_visible_ases"]
    assert intern["n_triplets"] == stats["n_triplets"]
    assert intern["n_link_vp_pairs"] >= intern["n_links"]
    memory = payload["memory"]
    assert memory["layout"] == "columnar"
    assert memory["total_bytes"] > 0
    assert memory["total_bytes"] == (
        sum(memory["columns_bytes"].values())
        + sum(memory["index_bytes"].values())
    )


def test_corpus_stats_text(capsys):
    rc = cli.main([
        "corpus", "stats", "--ases", "150", "--vps", "15",
        "--seed", "7", "--churn-rounds", "0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "visible links" in out
    assert "layout: columnar" in out
    assert "columnar memory" in out
