"""Tests for the validation-data containers."""

import pytest

from repro.topology.graph import RelType
from repro.validation.data import LabelSource, ValidationData, ValidationLabel


def _p2c(provider):
    return ValidationLabel(rel=RelType.P2C, provider=provider,
                           source=LabelSource.COMMUNITY)


def _p2p(source=LabelSource.COMMUNITY):
    return ValidationLabel(rel=RelType.P2P, provider=None, source=source)


class TestValidationLabel:
    def test_p2c_requires_provider(self):
        with pytest.raises(ValueError):
            ValidationLabel(rel=RelType.P2C, provider=None,
                            source=LabelSource.RPSL)

    def test_p2p_rejects_provider(self):
        with pytest.raises(ValueError):
            ValidationLabel(rel=RelType.P2P, provider=1,
                            source=LabelSource.RPSL)


class TestValidationData:
    def test_add_and_lookup(self):
        data = ValidationData()
        data.add(1, 2, _p2c(1))
        assert (1, 2) in data
        assert data.single_rel((1, 2)) is RelType.P2C
        assert data.provider_claim((1, 2)) == 1

    def test_duplicate_labels_collapse(self):
        data = ValidationData()
        data.add(1, 2, _p2c(1))
        data.add(2, 1, _p2c(1))  # same link, same label
        assert len(data.labels_of((1, 2))) == 1

    def test_multi_label_detection(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        data.add(1, 2, _p2c(1))
        assert data.is_multi_label((1, 2))
        assert data.single_rel((1, 2)) is None
        assert data.multi_label_links() == [(1, 2)]

    def test_same_rel_different_source_not_multi(self):
        data = ValidationData()
        data.add(1, 2, _p2p(LabelSource.COMMUNITY))
        data.add(1, 2, _p2p(LabelSource.RPSL))
        assert not data.is_multi_label((1, 2))
        assert len(data.labels_of((1, 2))) == 2

    def test_first_label_order_preserved(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        data.add(1, 2, _p2c(2))
        first = data.first_label((1, 2))
        assert first is not None and first.rel is RelType.P2P

    def test_counts_exclude_multi_label(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        data.add(3, 4, _p2c(3))
        data.add(5, 6, _p2p())
        data.add(5, 6, _p2c(5))
        counts = data.counts_by_rel()
        assert counts[RelType.P2P] == 1
        assert counts[RelType.P2C] == 1

    def test_copy_independent(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        clone = data.copy()
        clone.add(3, 4, _p2c(3))
        assert (3, 4) not in data

    def test_remove_link(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        data.remove_link((1, 2))
        assert (1, 2) not in data
        data.remove_link((1, 2))  # idempotent

    def test_stats(self):
        data = ValidationData()
        data.add(1, 2, _p2p())
        data.add(1, 2, _p2c(1))
        data.add(3, 4, _p2p())
        stats = data.stats()
        assert stats == {"n_links": 2, "n_labels": 3, "n_multi_label": 1}
