"""Tests for the RPSL/WHOIS aut-num model."""

import pytest

from repro.topology.graph import RelType
from repro.validation.rpsl import (
    AutNumRecord,
    extract_rpsl_labels,
    generate_rpsl_records,
    parse_autnum,
)


class TestRecordRendering:
    def test_provider_lines(self):
        record = AutNumRecord(asn=64500, policy={64496: "provider"})
        text = record.to_rpsl()
        assert "aut-num: AS64500" in text
        assert "import: from AS64496 accept ANY" in text

    def test_round_trip(self):
        record = AutNumRecord(
            asn=64500,
            policy={1: "provider", 2: "customer", 3: "peer"},
        )
        parsed = parse_autnum(record.to_rpsl())
        assert parsed.asn == 64500
        assert parsed.policy == record.policy

    def test_parse_requires_autnum_attribute(self):
        with pytest.raises(ValueError):
            parse_autnum("import: from AS1 accept ANY")


class TestLabelExtraction:
    def test_provider_claim(self):
        record = AutNumRecord(asn=64500, policy={1: "provider"})
        data = extract_rpsl_labels([record])
        label = data.first_label((1, 64500))
        assert label is not None
        assert label.rel is RelType.P2C and label.provider == 1

    def test_customer_claim(self):
        record = AutNumRecord(asn=64500, policy={2: "customer"})
        data = extract_rpsl_labels([record])
        label = data.first_label((2, 64500))
        assert label is not None
        assert label.rel is RelType.P2C and label.provider == 64500

    def test_peer_claim(self):
        record = AutNumRecord(asn=64500, policy={3: "peer"})
        data = extract_rpsl_labels([record])
        assert data.single_rel((3, 64500)) is RelType.P2P

    def test_conflicting_records_yield_multi_label(self):
        a = AutNumRecord(asn=1, policy={2: "customer"})
        b = AutNumRecord(asn=2, policy={1: "peer"})  # stale view
        data = extract_rpsl_labels([a, b])
        assert data.is_multi_label((1, 2))


class TestGeneration:
    def test_records_deterministic(self, scenario):
        a = generate_rpsl_records(scenario.topology, scenario.config)
        b = generate_rpsl_records(scenario.topology, scenario.config)
        assert [(r.asn, sorted(r.policy.items())) for r in a] == [
            (r.asn, sorted(r.policy.items())) for r in b
        ]

    def test_records_cover_real_neighbors(self, scenario):
        for record in generate_rpsl_records(scenario.topology, scenario.config):
            neighbors = scenario.topology.graph.neighbors_of(record.asn)
            assert set(record.policy) <= set(neighbors)

    def test_region_skew(self, scenario):
        """The IRR culture skew: LACNIC ASes essentially never publish."""
        from repro.topology.regions import Region

        records = generate_rpsl_records(scenario.topology, scenario.config)
        regions = [
            scenario.topology.graph.node(record.asn).region for record in records
        ]
        assert regions, "no RPSL records generated at all"
        assert regions.count(Region.LACNIC) <= 1
