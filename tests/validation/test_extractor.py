"""Tests for community-based label extraction."""

import pytest

from repro.bgp.communities import CommunityCodebook, Meaning
from repro.datasets.paths import CollectedRoute, PathCorpus
from repro.topology.graph import RelType
from repro.validation.documentation import DocumentationRegistry, PublishedCodebook
from repro.validation.extractor import extract_community_labels

_VALUES = {
    Meaning.LEARNED_FROM_CUSTOMER: 100,
    Meaning.LEARNED_FROM_PEER: 200,
    Meaning.LEARNED_FROM_PROVIDER: 300,
    Meaning.BLACKHOLE: 666,
    Meaning.NO_EXPORT_TO_PEERS: 990,
}


def _docs(*asns, stale=()):
    registry = DocumentationRegistry()
    for asn in asns:
        values = dict(_VALUES)
        is_stale = asn in stale
        if is_stale:
            values[Meaning.LEARNED_FROM_CUSTOMER] = 200
            values[Meaning.LEARNED_FROM_PEER] = 100
        registry.publish(PublishedCodebook(asn=asn, values=values, stale=is_stale))
    return registry


def _corpus(*routes):
    corpus = PathCorpus()
    for path, communities in routes:
        corpus.add_route(
            CollectedRoute(vp=path[0], origin=path[-1], path=tuple(path),
                           communities=tuple(communities))
        )
    return corpus


class TestExtraction:
    def test_customer_tag_yields_p2c(self):
        corpus = _corpus(((10, 30, 100), [(10, 100)]))
        data = extract_community_labels(corpus, _docs(10))
        label = data.first_label((10, 30))
        assert label is not None
        assert label.rel is RelType.P2C
        assert label.provider == 10

    def test_peer_tag_yields_p2p(self):
        corpus = _corpus(((10, 30, 100), [(10, 200)]))
        data = extract_community_labels(corpus, _docs(10))
        assert data.single_rel((10, 30)) is RelType.P2P

    def test_provider_tag_yields_reversed_p2c(self):
        corpus = _corpus(((30, 10, 100), [(30, 300)]))
        data = extract_community_labels(corpus, _docs(30))
        label = data.first_label((10, 30))
        assert label is not None
        assert label.rel is RelType.P2C
        assert label.provider == 10

    def test_undocumented_owner_opaque(self):
        corpus = _corpus(((10, 30, 100), [(10, 100)]))
        data = extract_community_labels(corpus, _docs(99))
        assert len(data) == 0

    def test_action_communities_ignored(self):
        corpus = _corpus(((10, 30, 100), [(10, 666), (10, 990)]))
        data = extract_community_labels(corpus, _docs(10))
        assert len(data) == 0

    def test_owner_not_on_path_ignored(self):
        corpus = _corpus(((10, 30, 100), [(77, 100)]))
        data = extract_community_labels(corpus, _docs(77))
        assert len(data) == 0

    def test_origin_tag_unattributable(self):
        # A community owned by the origin has no next hop to label.
        corpus = _corpus(((10, 30, 100), [(100, 100)]))
        data = extract_community_labels(corpus, _docs(100))
        assert len(data) == 0

    def test_stale_documentation_flips_label(self):
        # The router tags with the true value (100 = customer), but the
        # published page swapped customer/peer: the scraper reads peer.
        corpus = _corpus(((10, 30, 100), [(10, 100)]))
        data = extract_community_labels(corpus, _docs(10, stale=(10,)))
        assert data.single_rel((10, 30)) is RelType.P2P

    def test_multiple_taggers_one_route(self):
        corpus = _corpus(((10, 30, 100), [(10, 200), (30, 100)]))
        data = extract_community_labels(corpus, _docs(10, 30))
        assert data.single_rel((10, 30)) is RelType.P2P
        assert data.single_rel((30, 100)) is RelType.P2C


class TestScenarioExtraction:
    def test_labels_mostly_match_ground_truth(self, scenario):
        """Community labels are near-ground-truth (the dirt is small)."""
        data = extract_community_labels(
            scenario.corpus, scenario.raw_validation.documentation
        )
        graph = scenario.topology.graph
        checked = ok = 0
        for key in data.links():
            rel = data.single_rel(key)
            if rel is None or not graph.has_link(*key):
                continue
            truth = graph.link(*key).rel
            if truth is RelType.S2S:
                continue
            checked += 1
            ok += truth is rel
        assert checked > 50
        assert ok / checked > 0.93
