"""Tests for the §4.2 label-quality treatment."""

import pytest

from repro.topology.asn import AS_TRANS
from repro.topology.graph import RelType
from repro.topology.orgs import Organisation, OrgMap
from repro.validation.cleaning import (
    MultiLabelPolicy,
    clean_validation,
    count_sibling_links,
)
from repro.validation.data import LabelSource, ValidationData, ValidationLabel


def _p2c(provider):
    return ValidationLabel(rel=RelType.P2C, provider=provider,
                           source=LabelSource.COMMUNITY)


def _p2p():
    return ValidationLabel(rel=RelType.P2P, provider=None,
                           source=LabelSource.COMMUNITY)


@pytest.fixture
def orgs():
    m = OrgMap()
    m.add_org(Organisation("ORG-S", "Siblings Inc", "US", [60, 61]))
    m.add_org(Organisation("ORG-A", "A", "US", [1]))
    m.add_org(Organisation("ORG-B", "B", "US", [2]))
    return m


@pytest.fixture
def dirty(orgs):
    data = ValidationData()
    data.add(1, 2, _p2c(1))                  # clean entry
    data.add(1, AS_TRANS, _p2c(1))           # AS_TRANS junk
    data.add(2, 64512, _p2p())               # reserved-ASN junk
    data.add(60, 61, _p2p())                 # sibling entry
    data.add(3, 4, _p2p())                   # multi-label entry...
    data.add(3, 4, _p2c(3))
    return data


class TestSpuriousRemoval:
    def test_counts_and_removal(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs)
        report = cleaned.report
        assert report.n_as_trans_links == 1
        assert report.n_reserved_links == 1
        assert report.n_sibling_links == 1
        assert (1, AS_TRANS) not in cleaned
        assert (2, 64512) not in cleaned
        assert (60, 61) not in cleaned

    def test_clean_entry_survives(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs)
        assert cleaned.rel_of((1, 2)) is RelType.P2C
        assert cleaned.provider_of((1, 2)) == 1


class TestMultiLabelPolicies:
    def test_ignore_drops(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs, MultiLabelPolicy.IGNORE)
        assert (3, 4) not in cleaned
        assert cleaned.report.n_multi_label_links == 1
        assert cleaned.report.n_multi_label_ases == 2

    def test_first_p2p(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs, MultiLabelPolicy.FIRST_P2P_ELSE_P2C)
        assert cleaned.rel_of((3, 4)) is RelType.P2P

    def test_first_p2p_falls_back_to_p2c(self, orgs):
        data = ValidationData()
        data.add(3, 4, _p2c(3))
        data.add(3, 4, _p2p())
        cleaned = clean_validation(data, orgs, MultiLabelPolicy.FIRST_P2P_ELSE_P2C)
        assert cleaned.rel_of((3, 4)) is RelType.P2C
        assert cleaned.provider_of((3, 4)) == 3

    def test_always_p2c(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs, MultiLabelPolicy.ALWAYS_P2C)
        assert cleaned.rel_of((3, 4)) is RelType.P2C

    def test_policies_change_counts_as_in_paper(self, dirty, orgs):
        """§4.2: the policy choice shifts the published P2P/P2C counts."""
        ignore = clean_validation(dirty, orgs, MultiLabelPolicy.IGNORE)
        first = clean_validation(dirty, orgs, MultiLabelPolicy.FIRST_P2P_ELSE_P2C)
        always = clean_validation(dirty, orgs, MultiLabelPolicy.ALWAYS_P2C)
        assert len(first) == len(always) == len(ignore) + 1
        assert first.counts()[RelType.P2P] == always.counts()[RelType.P2P] + 1


class TestReport:
    def test_kept_links(self, dirty, orgs):
        cleaned = clean_validation(dirty, orgs)
        assert cleaned.report.n_kept_links == len(cleaned) == 1

    def test_as_dict(self, dirty, orgs):
        d = clean_validation(dirty, orgs).report.as_dict()
        assert d["as_trans_links"] == 1
        assert d["kept_links"] == 1


class TestSiblingCounting:
    def test_count_sibling_links(self, orgs):
        links = [(60, 61), (1, 2), (1, 61)]
        assert count_sibling_links(links, orgs) == 1


class TestScenarioCleaning:
    def test_configured_dirt_found(self, scenario):
        """The injected §4.2 dirt comes back out with the right counts."""
        report = scenario.validation.report
        cfg = scenario.config.validation
        assert report.n_as_trans_links == cfg.n_as_trans_entries
        # Reserved entries can collide (same link drawn twice) and very
        # rarely land on partner == reserved; allow small shortfall.
        assert report.n_reserved_links >= cfg.n_reserved_asn_entries - 3

    def test_no_reserved_asns_survive(self, scenario):
        from repro.topology.asn import is_reserved, is_as_trans

        for a, b in scenario.validation.links():
            assert not is_reserved(a) and not is_reserved(b)
            assert not is_as_trans(a) and not is_as_trans(b)

    def test_no_sibling_links_survive(self, scenario):
        orgs = scenario.topology.orgs
        for a, b in scenario.validation.links():
            assert not orgs.are_siblings(a, b)
