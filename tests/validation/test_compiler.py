"""Tests for the validation compiler and documentation model."""

import pytest

from repro.bgp.communities import Meaning
from repro.topology.asn import AS_TRANS, is_reserved
from repro.topology.graph import RelType, Role
from repro.topology.regions import Region
from repro.validation.compiler import compile_validation
from repro.validation.documentation import build_documentation


class TestDocumentationModel:
    def test_deterministic(self, scenario):
        a = build_documentation(
            scenario.topology, scenario.communities, scenario.config
        )
        b = build_documentation(
            scenario.topology, scenario.communities, scenario.config
        )
        assert set(a.documenting_ases()) == set(b.documenting_ases())

    def test_clique_documents(self, scenario):
        docs = scenario.raw_validation.documentation
        clique = scenario.topology.graph.clique()
        documenting = sum(1 for asn in clique if docs.documents(asn))
        assert documenting >= len(clique) - 2

    def test_lacnic_barely_documents(self, scenario):
        docs = scenario.raw_validation.documentation
        graph = scenario.topology.graph
        lacnic = [n.asn for n in graph.nodes() if n.region is Region.LACNIC]
        documenting = sum(1 for asn in lacnic if docs.documents(asn))
        assert documenting / len(lacnic) < 0.02

    def test_stubs_rarely_document(self, scenario):
        docs = scenario.raw_validation.documentation
        graph = scenario.topology.graph
        stubs = [n.asn for n in graph.nodes() if n.role is Role.STUB]
        documenting = sum(1 for asn in stubs if docs.documents(asn))
        assert documenting / len(stubs) < 0.05

    def test_decode_requires_publication(self, scenario):
        docs = scenario.raw_validation.documentation
        registry = scenario.communities
        for asn in scenario.topology.graph.asns():
            community = registry.codebook(asn).encode(Meaning.LEARNED_FROM_PEER)
            decoded = docs.decode(community)
            if docs.documents(asn) and not docs.is_stale(asn):
                assert decoded is Meaning.LEARNED_FROM_PEER
            elif not docs.documents(asn):
                assert decoded is None


class TestCompiledValidation:
    def test_contains_spurious_dirt(self, scenario):
        raw = scenario.raw_validation.data
        junk_links = [
            key
            for key in raw.links()
            if AS_TRANS in key or is_reserved(key[0]) or is_reserved(key[1])
        ]
        cfg = scenario.config.validation
        assert len(junk_links) >= cfg.n_as_trans_entries

    def test_multi_label_entries_exist(self, scenario):
        assert scenario.raw_validation.data.multi_label_links()

    def test_hybrid_links_conflict_when_validated(self, scenario):
        raw = scenario.raw_validation.data
        for link in scenario.topology.graph.links():
            if link.is_hybrid and link.key in raw:
                assert raw.is_multi_label(link.key)

    def test_direct_reports_counted(self, scenario):
        assert (
            scenario.raw_validation.n_direct_reports
            == scenario.config.validation.n_direct_reports
        )

    def test_deterministic(self, scenario):
        again = compile_validation(
            scenario.topology,
            scenario.corpus,
            scenario.communities,
            scenario.config,
            documentation=scenario.raw_validation.documentation,
        )
        assert len(again.data) == len(scenario.raw_validation.data)
        assert sorted(again.data.links()) == sorted(
            scenario.raw_validation.data.links()
        )

    def test_coverage_is_partial(self, scenario):
        """Validation must cover a minority of the visible links —
        that scarcity is the paper's premise."""
        visible = set(scenario.corpus.visible_links())
        covered = sum(1 for key in visible if key in scenario.validation)
        assert 0.02 < covered / len(visible) < 0.6
