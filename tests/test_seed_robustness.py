"""Seed robustness: the paper's qualitative findings must not hinge on
one lucky RNG stream.

Three differently-seeded small scenarios are built and the headline
shapes checked on each.  This guards the calibration against silent
fragility — a finding that flips across seeds is a coincidence, not a
mechanism.
"""

import pytest

from repro import ScenarioConfig, build_scenario

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request):
    return build_scenario(ScenarioConfig.small(seed=request.param))


class TestShapeRobustness:
    def test_lacnic_hole(self, seeded):
        by_name = seeded.regional_bias().by_name()
        if "L°" not in by_name or by_name["L°"].n_links < 10:
            pytest.skip("too few L° links at this seed")
        assert by_name["L°"].coverage < 0.1
        if "AR°" in by_name and by_name["AR°"].n_links >= 10:
            assert by_name["AR°"].coverage > by_name["L°"].coverage

    def test_t1_classes_best_covered(self, seeded):
        by_name = seeded.topological_bias().by_name()
        t1_coverage = max(
            by_name[name].coverage
            for name in ("T1-TR", "S-T1")
            if name in by_name
        )
        bulk_coverage = max(
            by_name[name].coverage
            for name in ("S-TR", "TR°")
            if name in by_name
        )
        assert t1_coverage > bulk_coverage

    def test_asrank_beats_gao(self, seeded):
        asrank = seeded.validation_table("asrank").total
        gao = seeded.validation_table("gao").total
        assert asrank.mcc > gao.mcc

    def test_p2c_stays_strong(self, seeded):
        for name in ("asrank", "toposcope"):
            total = seeded.validation_table(name).total
            assert total.ppv_p2c > 0.8

    def test_t1_tr_depressed(self, seeded):
        table = seeded.validation_table("asrank")
        t1_tr = table.metrics("T1-TR")
        if t1_tr is None or t1_tr.n_validated < 20:
            pytest.skip("T1-TR too small at this seed")
        assert t1_tr.mcc < table.total.mcc + 0.02

    def test_validation_minority(self, seeded):
        visible = len(seeded.corpus.visible_links())
        assert len(seeded.validation) < 0.6 * visible
