"""Tests for the one-call scenario builder and config handling."""

import pytest

from repro import ALGORITHM_NAMES, ScenarioConfig, build_scenario
from repro.topology.graph import RelType
from repro.validation.cleaning import MultiLabelPolicy


class TestConfig:
    def test_default_valid(self):
        ScenarioConfig.default().validate()

    def test_small_valid(self):
        ScenarioConfig.small().validate()

    def test_replace(self):
        config = ScenarioConfig.small()
        other = config.replace(seed=99)
        assert other.seed == 99
        assert config.seed != 99

    def test_invalid_vp_count(self):
        config = ScenarioConfig.small()
        config.measurement.n_vantage_points = 0
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_tier_shares(self):
        config = ScenarioConfig.small()
        config.topology.large_transit_share = 0.9
        config.topology.mid_transit_share = 0.2
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_full_feed_prob(self):
        config = ScenarioConfig.small()
        config.measurement.full_feed_prob = 1.5
        with pytest.raises(ValueError):
            config.validate()


class TestScenario:
    def test_inference_cached(self, scenario):
        assert scenario.infer("asrank") is scenario.infer("asrank")

    def test_all_algorithms_runnable(self, scenario):
        for name in ALGORITHM_NAMES:
            rels = scenario.infer(name)
            assert len(rels) > 0

    def test_unknown_algorithm(self, scenario):
        with pytest.raises(ValueError):
            scenario.infer("magic")

    def test_inferred_links_exclude_siblings(self, scenario):
        with_siblings = scenario.inferred_links(exclude_siblings=False)
        without = scenario.inferred_links(exclude_siblings=True)
        assert len(without) <= len(with_siblings)
        orgs = scenario.topology.orgs
        assert all(not orgs.are_siblings(*key) for key in without)

    def test_class_links_union_of_classifiers(self, scenario):
        links = scenario.class_links("T1-TR")
        topological = scenario.topological_classifier()
        assert links
        assert all(topological.classify(key) == "T1-TR" for key in links)

    def test_multi_label_policy_changes_validation(self):
        config = ScenarioConfig.small(seed=13)
        ignore = build_scenario(config, MultiLabelPolicy.IGNORE)
        always = build_scenario(config, MultiLabelPolicy.ALWAYS_P2C)
        # Same raw data, different resolution.
        assert len(always.validation) >= len(ignore.validation)

    def test_determinism_across_builds(self):
        a = build_scenario(ScenarioConfig.small(seed=21))
        b = build_scenario(ScenarioConfig.small(seed=21))
        assert a.corpus.stats() == b.corpus.stats()
        assert sorted(a.validation.links()) == sorted(b.validation.links())
        assert sorted(a.infer("asrank").items()) == sorted(
            b.infer("asrank").items()
        )


class TestPaperShapeIntegration:
    """End-to-end assertions of the paper's qualitative findings at
    test scale (the benchmarks re-check them at paper scale)."""

    def test_lacnic_validation_hole(self, scenario):
        """Figure 1: L° links exist in bulk but are barely validated."""
        by_name = scenario.regional_bias().by_name()
        assert by_name["L°"].share > 0.03
        assert by_name["L°"].coverage < 0.05
        assert by_name["AR°"].coverage > by_name["L°"].coverage + 0.1

    def test_t1_classes_over_validated(self, scenario):
        """Figure 2: T1-incident classes dominate validation coverage."""
        by_name = scenario.topological_bias().by_name()
        assert by_name["T1-TR"].coverage > by_name["S-TR"].coverage
        assert by_name["T1-TR"].coverage > by_name["TR°"].coverage

    def test_t1_tr_precision_drop(self, scenario):
        """§6: the T1-TR class P2P precision sits below the total."""
        table = scenario.validation_table("asrank")
        t1_tr = table.metrics("T1-TR")
        assert t1_tr is not None
        assert t1_tr.ppv_p2p < table.total.ppv_p2p

    def test_p2c_near_perfect_everywhere(self, scenario):
        """§6 'common wisdom': P2C precision is high for every
        algorithm."""
        for name in ("asrank", "problink", "toposcope"):
            table = scenario.validation_table(name)
            assert table.total.ppv_p2c > 0.85

    def test_cogent_dominates_case_study(self, scenario):
        result = scenario.case_study("asrank")
        if result.n_wrong < 5:
            pytest.skip("too few wrong links at test scale")
        assert result.focus_member == scenario.topology.cogent_asn
