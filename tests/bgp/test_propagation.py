"""Tests for the route propagation (decision process) on the tiny
hand-checkable topology.

Topology reminder (see conftest): clique {10, 20} (P2P); 30 is 10's
customer, 40 is 20's customer, 30-40 peer; 35 is 10's *partial-transit*
customer with its own customer 350; 50 buys from 40; stubs 100 (from
30), 200 (from 40), 300 (from 30 and 40); siblings 60-61; special stub
70 peers with 10 and buys from 30.
"""

import pytest

from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import compute_route_tree, iter_route_trees


@pytest.fixture
def adjacency(tiny_graph):
    return AdjacencyIndex(tiny_graph)


class TestBasicRouting:
    def test_origin_has_self_route(self, adjacency):
        tree = compute_route_tree(adjacency, 100)
        assert tree.pref[100] is RouteClass.SELF
        assert tree.dist[100] == 0
        assert tree.path_from(100) == (100,)

    def test_customer_route_preferred(self, adjacency):
        # 30's route to 100: direct customer.
        tree = compute_route_tree(adjacency, 100)
        assert tree.pref[30] is RouteClass.CUSTOMER
        assert tree.path_from(30) == (30, 100)

    def test_peer_route(self, adjacency):
        # 40 reaches 100 via its peer 30 (not via provider 20).
        tree = compute_route_tree(adjacency, 100)
        assert tree.pref[40] is RouteClass.PEER
        assert tree.path_from(40) == (40, 30, 100)

    def test_provider_route(self, adjacency):
        # 200 reaches 100 via its provider 40.
        tree = compute_route_tree(adjacency, 100)
        assert tree.pref[200] is RouteClass.PROVIDER
        assert tree.path_from(200) == (200, 40, 30, 100)

    def test_clique_propagation(self, adjacency):
        # 20 hears 100 from its peer 10 (which heard it from customer 30).
        tree = compute_route_tree(adjacency, 100)
        assert tree.pref[20] is RouteClass.PEER
        assert tree.path_from(20) == (20, 10, 30, 100)

    def test_everyone_reaches_ordinary_origin(self, adjacency, tiny_graph):
        tree = compute_route_tree(adjacency, 100)
        for asn in tiny_graph.asns():
            assert tree.has_route(asn), f"AS{asn} has no route to 100"


class TestValleyFree:
    def _class_sequence(self, tiny_graph, path):
        """Relationship classes along a path, origin side first."""
        sequence = []
        for left, right in zip(path, path[1:]):
            link = tiny_graph.link(left, right)
            if link.rel.name == "P2C":
                sequence.append("down" if link.provider == left else "up")
            else:
                sequence.append("flat")
        return sequence

    def test_all_paths_valley_free(self, adjacency, tiny_graph):
        for tree in iter_route_trees(adjacency):
            for asn in tiny_graph.asns():
                path = tree.path_from(asn)
                if path is None or len(path) < 2:
                    continue
                # Read from the VP side: downs may only follow the apex;
                # once we go "down", no "up" or second "flat" may follow.
                seq = self._class_sequence(tiny_graph, path)
                state = "ascending"
                for step in seq:
                    if state == "ascending":
                        if step == "flat":
                            state = "peaked"
                        elif step == "down":
                            state = "descending"
                    elif state == "peaked":
                        assert step == "down", f"valley in {path}: {seq}"
                        state = "descending"
                    else:
                        assert step == "down", f"valley in {path}: {seq}"

    def test_no_route_through_two_peer_links(self, adjacency, tiny_graph):
        for origin in tiny_graph.asns():
            tree = compute_route_tree(adjacency, origin)
            for asn in tiny_graph.asns():
                path = tree.path_from(asn)
                if path is None:
                    continue
                flats = sum(
                    1
                    for left, right in zip(path, path[1:])
                    if tiny_graph.link(left, right).rel.name != "P2C"
                )
                assert flats <= 1


class TestPartialTransit:
    def test_provider_keeps_customer_preference(self, adjacency):
        # 10's route to 350 is a customer route, learned via 35.
        tree = compute_route_tree(adjacency, 350)
        assert tree.pref[10] is RouteClass.CUSTOMER
        assert tree.restricted[10] is True

    def test_not_exported_to_peers(self, adjacency):
        # 20 peers with 10 but must not hear 35/350 routes from it, and
        # has no other path: no route at all.
        tree = compute_route_tree(adjacency, 350)
        assert not tree.has_route(20)
        assert not tree.has_route(40)  # 40 is below 20 only
        assert not tree.has_route(200)

    def test_exported_to_customers(self, adjacency):
        # 30 is 10's customer: it receives the partial-transit route.
        tree = compute_route_tree(adjacency, 350)
        assert tree.has_route(30)
        assert tree.path_from(30) == (30, 10, 35, 350)
        # and 30's own customers get it too.
        assert tree.path_from(100) == (100, 30, 10, 35, 350)

    def test_origin_of_partial_customer_itself(self, adjacency):
        tree = compute_route_tree(adjacency, 35)
        assert not tree.has_route(20)
        assert tree.has_route(30)


class TestPathFromEdgeCases:
    """Contract of :meth:`RouteTree.path_from`, which the columnar
    corpus builder (and the collectors feeding it) relies on."""

    def test_origin_itself_is_singleton_path(self, adjacency, tiny_graph):
        # Holds for every origin, not just the stub of the basic tests.
        for origin in tiny_graph.asns():
            tree = compute_route_tree(adjacency, origin)
            assert tree.path_from(origin) == (origin,)
            assert tree.restricted[origin] is False

    def test_unrouted_as_returns_none(self, adjacency):
        # The partial-transit origin 350 never reaches 10's peer side.
        tree = compute_route_tree(adjacency, 350)
        for unrouted in (20, 40, 200):
            assert not tree.has_route(unrouted)
            assert tree.path_from(unrouted) is None

    def test_unknown_asn_returns_none(self, adjacency):
        tree = compute_route_tree(adjacency, 100)
        assert tree.path_from(999999) is None

    def test_restricted_partial_transit_paths(self, adjacency):
        # 10 holds the 350 route as restricted (partial transit): its
        # customers still get full paths through it, while the path
        # ends (None) everywhere the restricted route may not travel.
        tree = compute_route_tree(adjacency, 350)
        assert tree.restricted[10] is True
        assert tree.path_from(10) == (10, 35, 350)
        assert tree.path_from(30) == (30, 10, 35, 350)
        assert tree.path_from(100) == (100, 30, 10, 35, 350)
        assert tree.path_from(20) is None
        # Downstream holders of the re-exported route are themselves
        # unrestricted: from 30 on, it is an ordinary customer route.
        assert tree.restricted[30] is False

    def test_path_consistent_with_parent_pointers(self, adjacency, tiny_graph):
        tree = compute_route_tree(adjacency, 300)
        for asn in tiny_graph.asns():
            path = tree.path_from(asn)
            if path is None:
                continue
            # Walking parent pointers reproduces the returned tuple.
            walked = [asn]
            while tree.parent[walked[-1]] is not None:
                walked.append(tree.parent[walked[-1]])
            assert tuple(walked) == path
            assert path[-1] == 300


class TestTieBreaking:
    def test_multihomed_stub_shortest_then_lowest(self, adjacency):
        # 300 buys from 30 and 40; from 100's perspective the route via
        # 30 is shorter (100-30-300).
        tree = compute_route_tree(adjacency, 300)
        assert tree.path_from(100) == (100, 30, 300)

    def test_deterministic(self, adjacency):
        t1 = compute_route_tree(adjacency, 300)
        t2 = compute_route_tree(adjacency, 300)
        assert t1.parent == t2.parent

    def test_dist_counts_hops(self, adjacency):
        tree = compute_route_tree(adjacency, 100)
        for asn, path_len in ((30, 1), (10, 2), (20, 3), (200, 3)):
            assert tree.dist[asn] == path_len


class TestExclusions:
    def test_failed_link_reroutes(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph, exclude={(30, 300)})
        tree = compute_route_tree(adjacency, 300)
        # With 30-300 down, 100 must reach 300 via its provider chain.
        path = tree.path_from(100)
        assert path is not None
        assert (100, 30) == path[:2]
        assert 300 == path[-1]
        assert (30, 300) not in zip(path, path[1:])

    def test_isolated_origin_unreachable(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph, exclude={(30, 100)})
        tree = compute_route_tree(adjacency, 100)
        assert not tree.has_route(30)
        assert not tree.has_route(10)
