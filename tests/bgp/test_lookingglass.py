"""Tests for the looking-glass (Adj-RIB-In) simulation."""

import pytest

from repro.bgp.communities import Meaning
from repro.bgp.lookingglass import LookingGlass


@pytest.fixture
def glass(tiny_topology, tiny_communities):
    return LookingGlass(tiny_topology, tiny_communities)


class TestRoutesReceived:
    def test_customer_session_offers_cone(self, glass):
        # 10 receives from ordinary customer 30: 30 itself + its cone.
        routes = glass.routes_received(10, from_neighbor=30)
        origins = {route.origin for route in routes}
        assert origins == {30, 100, 300, 61, 70}

    def test_peer_session_offers_cone(self, glass):
        # 10 receives from its clique peer 20: 20's customer cone.
        routes = glass.routes_received(10, from_neighbor=20)
        origins = {route.origin for route in routes}
        assert 40 in origins and 200 in origins
        assert 30 not in origins  # 20 must not export peer routes

    def test_provider_session_offers_everything(self, glass):
        # 30 queries the session with its provider 10: full table,
        # except the partial-transit island is INCLUDED (customers get
        # those routes) and 30's own routes are excluded (loop check).
        routes = glass.routes_received(30, from_neighbor=10)
        origins = {route.origin for route in routes}
        assert 35 in origins and 350 in origins
        assert 200 in origins
        assert 30 not in origins

    def test_non_adjacent_rejected(self, glass):
        with pytest.raises(ValueError):
            glass.routes_received(10, from_neighbor=200)

    def test_paths_start_at_neighbor(self, glass):
        for route in glass.routes_received(10, from_neighbor=30):
            assert route.path[0] == 30
            assert route.path[-1] == route.origin


class TestPartialTransitDetection:
    def test_no_export_community_visible(self, glass, tiny_communities):
        # The §6.1 smoking gun: routes 10 received from its
        # partial-transit customer 35 carry 10's no-export community.
        marker = tiny_communities.codebook(10).encode(Meaning.NO_EXPORT_TO_PEERS)
        routes = glass.routes_received(10, from_neighbor=35)
        assert routes
        assert all(route.has_community(marker) for route in routes)

    def test_ordinary_customer_not_tagged(self, glass, tiny_communities):
        marker = tiny_communities.codebook(10).encode(Meaning.NO_EXPORT_TO_PEERS)
        routes = glass.routes_received(10, from_neighbor=30)
        assert routes
        assert not any(route.has_community(marker) for route in routes)

    def test_find_no_export_sessions(self, glass):
        assert glass.find_no_export_sessions(10) == [35]
        assert glass.find_no_export_sessions(20) == []
