"""Tests for vantage-point selection and route collection."""

import pytest

from repro.bgp.collectors import (
    RouteCollector,
    VantagePoint,
    assign_community_strippers,
    collect_corpus,
    select_vantage_points,
)
from repro.bgp.communities import CommunityRegistry, Meaning
from repro.config import ScenarioConfig
from repro.topology.graph import Role
from repro.utils.rng import make_rng


@pytest.fixture
def registry(tiny_topology):
    return CommunityRegistry.build(tiny_topology.graph.asns(), make_rng(9))


def _collector(tiny_topology, registry, vps, strippers=frozenset()):
    return RouteCollector(tiny_topology, vps, registry, set(strippers))


class TestSelection:
    def test_respects_count(self, scenario):
        vps = select_vantage_points(scenario.topology, scenario.config)
        assert len(vps) == scenario.config.measurement.n_vantage_points
        assert len({vp.asn for vp in vps}) == len(vps)

    def test_transit_heavy(self, scenario):
        vps = select_vantage_points(scenario.topology, scenario.config)
        roles = [scenario.topology.graph.node(vp.asn).role for vp in vps]
        transit_share = sum(1 for r in roles if r.is_transit) / len(roles)
        assert transit_share > 0.6

    def test_clique_members_almost_all_feed(self, scenario):
        vps = {vp.asn for vp in select_vantage_points(scenario.topology, scenario.config)}
        clique = set(scenario.topology.graph.clique())
        assert len(clique & vps) >= len(clique) - 1

    def test_deterministic(self, scenario):
        a = select_vantage_points(scenario.topology, scenario.config)
        b = select_vantage_points(scenario.topology, scenario.config)
        assert a == b


class TestCollection:
    def test_full_feed_exports_everything(self, tiny_topology, registry):
        vps = [VantagePoint(asn=200, full_feed=True)]
        corpus = _collector(tiny_topology, registry, vps).collect()
        origins = {route.origin for route in corpus.routes()}
        # 200 reaches everything except the partial-transit island
        # (35/350 routes never reach 20's side).
        assert 100 in origins
        assert 35 not in origins
        assert 350 not in origins
        assert len(origins) == len(tiny_topology.graph) - 2

    def test_partial_feed_exports_customer_routes_only(
        self, tiny_topology, registry
    ):
        vps = [VantagePoint(asn=30, full_feed=False)]
        corpus = _collector(tiny_topology, registry, vps).collect()
        origins = {route.origin for route in corpus.routes()}
        # 30's customer cone plus itself: 100, 300, 61, 70, 30.
        assert origins == {30, 100, 300, 61, 70}

    def test_paths_start_at_vp(self, tiny_topology, registry):
        vps = [VantagePoint(asn=200, full_feed=True)]
        corpus = _collector(tiny_topology, registry, vps).collect()
        for route in corpus.routes():
            assert route.path[0] == 200
            assert route.path[-1] == route.origin

    def test_communities_tag_relationships(self, tiny_topology, registry):
        vps = [VantagePoint(asn=40, full_feed=True)]
        corpus = _collector(tiny_topology, registry, vps).collect()
        by_origin = {route.origin: route for route in corpus.routes()}
        # 40 learns 100 from peer 30: 40's own tag must be peer-meaning.
        route = by_origin[100]
        own_tag = registry.codebook(40).encode(Meaning.LEARNED_FROM_PEER)
        assert own_tag in route.communities

    def test_strippers_remove_foreign_tags(self, tiny_topology, registry):
        vps = [VantagePoint(asn=200, full_feed=True)]
        # 40 strips: 200's route to 100 is (200, 40, 30, 100); 30's tag
        # would have to survive 40 — it must not.
        corpus = _collector(
            tiny_topology, registry, vps, strippers={40}
        ).collect()
        by_origin = {route.origin: route for route in corpus.routes()}
        taggers = {community[0] for community in by_origin[100].communities}
        assert 200 in taggers  # the VP's own tag always survives
        assert 30 not in taggers

    def test_no_strippers_tags_survive(self, tiny_topology, registry):
        vps = [VantagePoint(asn=200, full_feed=True)]
        corpus = _collector(tiny_topology, registry, vps).collect()
        by_origin = {route.origin: route for route in corpus.routes()}
        taggers = {community[0] for community in by_origin[100].communities}
        assert taggers == {200, 40, 30}


class TestChurnMerging:
    def test_churn_rounds_add_links(self):
        from repro.topology.generator import generate_topology

        no_churn = ScenarioConfig.small()
        no_churn.measurement.n_churn_rounds = 0
        topology = generate_topology(no_churn)
        corpus0, _, communities, _ = collect_corpus(topology, no_churn)
        with_churn = ScenarioConfig.small()
        with_churn.measurement.n_churn_rounds = 3
        corpus3, _, _, _ = collect_corpus(
            topology, with_churn, communities=communities
        )
        assert len(corpus3.visible_links()) > len(corpus0.visible_links())
        assert len(corpus3) > len(corpus0)

    def test_strippers_deterministic(self, scenario):
        a = assign_community_strippers(scenario.topology, scenario.config)
        b = assign_community_strippers(scenario.topology, scenario.config)
        assert a == b
