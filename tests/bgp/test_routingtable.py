"""Tests for the per-AS routing table view."""

import pytest

from repro.bgp.policy import RouteClass
from repro.bgp.routingtable import RoutingTable


@pytest.fixture
def table_30(tiny_graph):
    return RoutingTable.compute(tiny_graph, 30)


class TestRoutingTable:
    def test_own_route(self, table_30):
        entry = table_30.lookup(30)
        assert entry is not None
        assert entry.next_hop is None
        assert entry.route_class is RouteClass.SELF
        assert entry.path_length == 0

    def test_customer_route(self, table_30):
        entry = table_30.lookup(100)
        assert entry is not None
        assert entry.route_class is RouteClass.CUSTOMER
        assert entry.path == (30, 100)

    def test_peer_and_provider_routes(self, table_30):
        # 200 sits under 40 (30's peer).
        entry = table_30.lookup(200)
        assert entry is not None
        assert entry.route_class is RouteClass.PEER
        assert entry.next_hop == 40
        # 20 (the other clique member) is reached via provider 10.
        entry = table_30.lookup(20)
        assert entry is not None
        assert entry.route_class is RouteClass.PROVIDER
        assert entry.next_hop == 10

    def test_partial_transit_routes_present_for_customers(self, tiny_graph):
        # 30 is 10's customer: it receives the partial-transit island.
        table = RoutingTable.compute(tiny_graph, 30)
        assert 350 in table
        # 20 (10's peer) must NOT have those routes.
        table_20 = RoutingTable.compute(tiny_graph, 20)
        assert 350 not in table_20
        assert 350 in set(table_20.unreachable(tiny_graph))

    def test_routes_via(self, table_30):
        via_provider = table_30.routes_via(10)
        assert all(e.next_hop == 10 for e in via_provider)
        assert any(e.origin == 20 for e in via_provider)

    def test_class_counts_sum(self, table_30, tiny_graph):
        counts = table_30.class_counts()
        assert sum(counts.values()) == len(table_30)
        assert counts[RouteClass.SELF] == 1

    def test_unknown_as_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            RoutingTable.compute(tiny_graph, 99999)

    def test_render(self, table_30):
        text = table_30.render(max_routes=3)
        assert "AS30 BGP table" in text
        assert "more)" in text
        assert "NextHop" in text

    def test_entries_sorted(self, table_30):
        origins = [e.origin for e in table_30.entries()]
        assert origins == sorted(origins)
