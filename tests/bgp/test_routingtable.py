"""Tests for the per-AS routing table view."""

import pytest

from repro.bgp.policy import RouteClass
from repro.bgp.routingtable import RoutingTable


@pytest.fixture
def table_30(tiny_graph):
    return RoutingTable.compute(tiny_graph, 30)


class TestRoutingTable:
    def test_own_route(self, table_30):
        entry = table_30.lookup(30)
        assert entry is not None
        assert entry.next_hop is None
        assert entry.route_class is RouteClass.SELF
        assert entry.path_length == 0

    def test_customer_route(self, table_30):
        entry = table_30.lookup(100)
        assert entry is not None
        assert entry.route_class is RouteClass.CUSTOMER
        assert entry.path == (30, 100)

    def test_peer_and_provider_routes(self, table_30):
        # 200 sits under 40 (30's peer).
        entry = table_30.lookup(200)
        assert entry is not None
        assert entry.route_class is RouteClass.PEER
        assert entry.next_hop == 40
        # 20 (the other clique member) is reached via provider 10.
        entry = table_30.lookup(20)
        assert entry is not None
        assert entry.route_class is RouteClass.PROVIDER
        assert entry.next_hop == 10

    def test_partial_transit_routes_present_for_customers(self, tiny_graph):
        # 30 is 10's customer: it receives the partial-transit island.
        table = RoutingTable.compute(tiny_graph, 30)
        assert 350 in table
        # 20 (10's peer) must NOT have those routes.
        table_20 = RoutingTable.compute(tiny_graph, 20)
        assert 350 not in table_20
        assert 350 in set(table_20.unreachable(tiny_graph))

    def test_routes_via(self, table_30):
        via_provider = table_30.routes_via(10)
        assert all(e.next_hop == 10 for e in via_provider)
        assert any(e.origin == 20 for e in via_provider)

    def test_class_counts_sum(self, table_30, tiny_graph):
        counts = table_30.class_counts()
        assert sum(counts.values()) == len(table_30)
        assert counts[RouteClass.SELF] == 1

    def test_unknown_as_rejected(self, tiny_graph):
        with pytest.raises(KeyError):
            RoutingTable.compute(tiny_graph, 99999)

    def test_render(self, table_30):
        text = table_30.render(max_routes=3)
        assert "AS30 BGP table" in text
        assert "more)" in text
        assert "NextHop" in text

    def test_entries_sorted(self, table_30):
        origins = [e.origin for e in table_30.entries()]
        assert origins == sorted(origins)


class TestSingleSweepLock:
    """``RoutingTable.compute`` builds one adjacency/plane and sweeps;
    its output is locked against the per-origin compatibility view."""

    @pytest.mark.parametrize("asn", [10, 30, 50, 350])
    def test_matches_per_origin_route_trees(self, tiny_graph, asn):
        from repro.bgp.policy import AdjacencyIndex
        from repro.bgp.propagation import compute_route_tree

        table = RoutingTable.compute(tiny_graph, asn)
        adjacency = AdjacencyIndex(tiny_graph)
        expected_origins = []
        for origin in adjacency.asns:
            tree = compute_route_tree(adjacency, origin)
            if not tree.has_route(asn):
                continue
            expected_origins.append(origin)
            entry = table.lookup(origin)
            assert entry is not None
            assert entry.path == tree.path_from(asn)
            assert entry.route_class is tree.pref[asn]
            assert entry.next_hop == (
                entry.path[1] if len(entry.path) > 1 else None
            )
        assert sorted(expected_origins) == sorted(
            e.origin for e in table.entries()
        )

    def test_identical_under_both_engines(self, tiny_graph, monkeypatch):
        from repro.bgp.propagation import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "legacy")
        legacy = RoutingTable.compute(tiny_graph, 30)
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        vec = RoutingTable.compute(tiny_graph, 30)
        assert list(vec.entries()) == list(legacy.entries())
