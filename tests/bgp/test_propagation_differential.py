"""Differential and invariant proofs for the propagation engines.

Three layers of evidence that the vectorized frontier-pass engine is
the *same function* as the legacy dict engine, not merely similar:

1. **Differential matrix** — randomized topologies over many seeds
   (partial-transit links, peering-dense cores, multi-homed stubs,
   disconnected islands); for every origin the two engines must agree
   AS-for-AS on ``pref``/``dist``/``parent``/``restricted``.
2. **Byte identity** — full scenario builds on seeds 3/5/11 must
   produce byte-identical path corpora and as-rel files for
   asrank/problink/toposcope under either engine (the PR-5
   equivalence-matrix pattern, extended across engines).
3. **Invariants** — executable versions of the docstring contract
   (valley-free, loop-free, within-class shortest, lower-ASN
   tie-break, restricted routes never exported to peers/providers),
   checked against the *adjacency alone* so they hold independently of
   the legacy engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ScenarioConfig, build_scenario
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import (
    ENGINE_ENV,
    RouteArrays,
    _compute_route_tree_legacy,
    compute_route_tree,
    plane_of,
    propagation_engine,
)
from repro.datasets.asrel import write_asrel
from repro.datasets.bgpdump import write_path_corpus
from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role, link_key
from repro.topology.regions import Region

#: ≥ 20 seeded topologies, per the acceptance criteria.
DIFFERENTIAL_SEEDS = tuple(range(24))

#: Scenario seeds for the byte-identity layer (same as the PR-5 matrix).
SCENARIO_SEEDS = (3, 5, 11)


# ---------------------------------------------------------------------------
# randomized topology builder
# ---------------------------------------------------------------------------

def random_policy_graph(seed: int) -> ASGraph:
    """A random topology exercising every propagation mechanism.

    Deliberately *not* the scenario generator: this builder is a few
    dozen lines the tests fully control, and it produces shapes the
    generator avoids — disconnected islands, very dense peering cores,
    stubs with providers in both components of a future partition.
    Structure per seed:

    * a 3-6 AS fully-meshed transit core (peering-dense),
    * a mid-transit layer buying from the core, some links partial,
    * multi-homed stubs (1-3 providers each) with stub-stub peering,
    * a handful of sibling (S2S) links,
    * a small *disconnected island* with its own provider tree.
    """
    rng = np.random.default_rng(seed)
    graph = ASGraph()
    n_core = int(rng.integers(3, 7))
    n_mid = int(rng.integers(4, 13))
    n_stub = int(rng.integers(12, 60))
    n_island = int(rng.integers(0, 6))
    total = n_core + n_mid + n_stub + n_island
    asns = sorted(
        int(a) for a in rng.choice(np.arange(1000, 60000), total, replace=False)
    )
    # Shuffle so ASN order is uncorrelated with tier (tie-breaks must
    # not accidentally align with construction order).
    rng.shuffle(asns)
    regions = list(Region)
    core = asns[:n_core]
    mids = asns[n_core : n_core + n_mid]
    stubs = asns[n_core + n_mid : n_core + n_mid + n_stub]
    island = asns[n_core + n_mid + n_stub :]
    roles = (
        [(a, Role.CLIQUE) for a in core]
        + [(a, Role.MID_TRANSIT) for a in mids]
        + [(a, Role.STUB) for a in stubs]
        + [(a, Role.SMALL_TRANSIT if i == 0 else Role.STUB) for i, a in enumerate(island)]
    )
    for asn, role in roles:
        region = regions[int(rng.integers(0, len(regions)))]
        graph.add_as(ASNode(asn=asn, region=region, role=role))

    def peer(a: int, b: int) -> None:
        if a != b and not graph.has_link(a, b):
            lo, hi = link_key(a, b)
            graph.add_link(Link(provider=lo, customer=hi, rel=RelType.P2P))

    def p2c(provider: int, customer: int, partial: bool = False) -> None:
        if provider != customer and not graph.has_link(provider, customer):
            graph.add_link(
                Link(
                    provider=provider,
                    customer=customer,
                    rel=RelType.P2C,
                    partial_transit=partial,
                )
            )

    # Peering-dense core: full mesh.
    for i, a in enumerate(core):
        for b in core[i + 1 :]:
            peer(a, b)
    # Mid transits: 1-2 core providers (some partial transit), plus some
    # lateral mid-mid peering.
    for m in mids:
        for _ in range(int(rng.integers(1, 3))):
            provider = core[int(rng.integers(0, n_core))]
            p2c(provider, m, partial=bool(rng.random() < 0.25))
        if rng.random() < 0.5 and n_mid > 1:
            peer(m, mids[int(rng.integers(0, n_mid))])
    # Multi-homed stubs: 1-3 providers from core+mids, occasional
    # stub-stub peering, occasional sibling link.
    transit = core + mids
    for s in stubs:
        for _ in range(int(rng.integers(1, 4))):
            p2c(transit[int(rng.integers(0, len(transit)))], s)
        if rng.random() < 0.2:
            peer(s, stubs[int(rng.integers(0, n_stub))])
        if rng.random() < 0.05:
            other = stubs[int(rng.integers(0, n_stub))]
            if other != s and not graph.has_link(s, other):
                lo, hi = link_key(s, other)
                graph.add_link(Link(provider=lo, customer=hi, rel=RelType.S2S))
    # Disconnected island: its own provider tree, no mainland links.
    if len(island) > 1:
        head = island[0]
        for leaf in island[1:]:
            p2c(head, leaf)
    return graph


# ---------------------------------------------------------------------------
# layer 1: engine-vs-engine differential matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
def test_engines_identical_on_random_topologies(seed):
    """Vectorized and legacy engines agree AS-for-AS, every origin."""
    graph = random_policy_graph(seed)
    adj = AdjacencyIndex(graph)
    plane = plane_of(adj)
    for origin in adj.asns:
        legacy = _compute_route_tree_legacy(adj, origin)
        vec = plane.propagate(origin).to_route_tree()
        assert vec.pref == legacy.pref, f"pref mismatch, origin {origin}"
        assert vec.dist == legacy.dist, f"dist mismatch, origin {origin}"
        assert vec.parent == legacy.parent, f"parent mismatch, origin {origin}"
        assert (
            vec.restricted == legacy.restricted
        ), f"restricted mismatch, origin {origin}"


def test_engine_switch_controls_compute_route_tree(monkeypatch, tiny_graph):
    """``REPRO_PROPAGATION_ENGINE`` selects the engine; both dispatch
    paths return equal trees and unknown values are rejected."""
    adj = AdjacencyIndex(tiny_graph)
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    assert propagation_engine() == "vectorized"
    vec_tree = compute_route_tree(adj, 10)
    monkeypatch.setenv(ENGINE_ENV, "legacy")
    assert propagation_engine() == "legacy"
    legacy_tree = compute_route_tree(adj, 10)
    assert vec_tree == legacy_tree
    monkeypatch.setenv(ENGINE_ENV, "dicts-of-fury")
    with pytest.raises(ValueError, match="REPRO_PROPAGATION_ENGINE"):
        propagation_engine()


# ---------------------------------------------------------------------------
# layer 2: byte-identical scenario artifacts across engines
# ---------------------------------------------------------------------------

def _scenario_config(seed: int) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=seed)
    config.topology.n_ases = 180
    config.measurement.n_vantage_points = 25
    config.measurement.n_churn_rounds = 2
    return config


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
def test_scenario_artifacts_byte_identical_across_engines(
    seed, tmp_path, monkeypatch
):
    """Corpus and as-rel outputs cannot depend on the engine."""
    monkeypatch.setenv(ENGINE_ENV, "legacy")
    legacy = build_scenario(_scenario_config(seed))
    monkeypatch.setenv(ENGINE_ENV, "vectorized")
    vec = build_scenario(_scenario_config(seed))

    def corpus_bytes(scenario, name: str) -> bytes:
        path = tmp_path / name
        write_path_corpus(scenario.corpus, path)
        return path.read_bytes()

    assert corpus_bytes(vec, "vec") == corpus_bytes(legacy, "legacy")
    for algorithm in ("asrank", "problink", "toposcope"):
        rels_v = tmp_path / f"vec-{algorithm}"
        rels_l = tmp_path / f"legacy-{algorithm}"
        write_asrel(vec.infer(algorithm), rels_v)
        write_asrel(legacy.infer(algorithm), rels_l)
        assert rels_v.read_bytes() == rels_l.read_bytes(), algorithm


# ---------------------------------------------------------------------------
# layer 3: invariants, independent of the legacy engine
# ---------------------------------------------------------------------------

def _neighbor_sets(adj: AdjacencyIndex):
    providers = {a: set(v) for a, v in adj.providers.items()}
    customers = {a: set(v) for a, v in adj.customers.items()}
    peers = {a: set(v) for a, v in adj.peers.items()}
    return providers, customers, peers


def _check_invariants(adj: AdjacencyIndex, routes: RouteArrays) -> None:
    """Assert the full docstring contract for one origin's routes."""
    providers, customers, peers = _neighbor_sets(adj)
    origin = routes.origin
    plane = routes.plane
    routed = {
        int(plane.asns[i]): (
            RouteClass(int(routes.pref_arr[i])),
            int(routes.dist_arr[i]),
            (int(plane.asns[routes.parent_arr[i]])
             if routes.parent_arr[i] >= 0 else None),
            bool(routes.restricted_arr[i]),
        )
        for i in routes.routed_ids()
    }

    def exports_up(asn: int) -> bool:
        """True iff ``asn`` announces its route to providers/peers."""
        cls, _, _, restr = routed[asn]
        return cls in (RouteClass.SELF, RouteClass.CUSTOMER) and not restr

    assert routed[origin] == (RouteClass.SELF, 0, None, False)
    for asn, (cls, dist, parent, restr) in routed.items():
        if asn == origin:
            continue
        path = routes.path_from(asn)
        assert path is not None and path[0] == asn and path[-1] == origin
        # Loop-free and length-consistent.
        assert len(set(path)) == len(path)
        assert len(path) == dist + 1

        # Valley-free: customer segment up, at most one peer hop, then
        # provider segment down — equivalently, hop classes along the
        # parent chain are non-increasing in preference toward the VP.
        hop_classes = [routed[hop][0] for hop in path[:-1]]
        for vp_side, origin_side in zip(hop_classes, hop_classes[1:]):
            assert vp_side >= origin_side
        assert sum(1 for c in hop_classes if c is RouteClass.PEER) <= 1

        # Class correctness + within-class shortest + lower-ASN
        # tie-break, from the adjacency alone.
        customer_offers = [
            c for c in customers[asn] if c in routed and exports_up(c)
        ]
        peer_offers = [p for p in peers[asn] if p in routed and exports_up(p)]
        provider_offers = [p for p in providers[asn] if p in routed]
        if cls is RouteClass.CUSTOMER:
            best = min(routed[c][1] for c in customer_offers)
            assert dist == best + 1
            assert parent == min(
                c for c in customer_offers if routed[c][1] == best
            )
            assert restr == ((asn, parent) in adj.partial)
        elif cls is RouteClass.PEER:
            assert not customer_offers
            best = min(routed[p][1] for p in peer_offers)
            assert dist == best + 1
            assert parent == min(
                p for p in peer_offers if routed[p][1] == best
            )
            assert restr is False
        else:
            assert cls is RouteClass.PROVIDER
            assert not customer_offers and not peer_offers
            best = min(routed[p][1] for p in provider_offers)
            assert dist == best + 1
            assert parent == min(
                p for p in provider_offers if routed[p][1] == best
            )
            assert restr is False

        # Restricted routes never surface in peer exports: a PEER
        # route's sender must hold an unrestricted export-all route
        # (already implied by ``exports_up`` above — restate the
        # critical bit explicitly for the partial-transit mechanism).
        if cls is RouteClass.PEER:
            assert routed[parent][3] is False

    # Unreached ASes really are unreachable under the export rules: no
    # routed neighbour was allowed to announce to them.
    for asn in adj.asns:
        if asn in routed:
            continue
        assert not any(c in routed and exports_up(c) for c in customers[asn])
        assert not any(p in routed and exports_up(p) for p in peers[asn])
        assert not any(p in routed for p in providers[asn])


@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS[:8])
def test_route_invariants_on_random_topologies(seed):
    graph = random_policy_graph(seed)
    adj = AdjacencyIndex(graph)
    plane = plane_of(adj)
    for origin in adj.asns:
        _check_invariants(adj, plane.propagate(origin))


def test_route_invariants_on_tiny_graph(tiny_graph):
    adj = AdjacencyIndex(tiny_graph)
    plane = plane_of(adj)
    for origin in adj.asns:
        _check_invariants(adj, plane.propagate(origin))


# ---------------------------------------------------------------------------
# RouteArrays protocol (the duck-typed RouteTree surface)
# ---------------------------------------------------------------------------

def test_route_arrays_protocol_matches_tree(tiny_graph):
    adj = AdjacencyIndex(tiny_graph)
    arrays = plane_of(adj).propagate(10)
    tree = arrays.to_route_tree()
    for asn in adj.asns:
        assert arrays.has_route(asn) == tree.has_route(asn)
        assert arrays.path_from(asn) == tree.path_from(asn)
        if tree.has_route(asn):
            assert arrays.pref[asn] is tree.pref[asn]
            assert asn in arrays.pref
        else:
            assert asn not in arrays.pref
            with pytest.raises(KeyError):
                arrays.pref[asn]
    # Unknown ASes behave like the dict view too.
    assert not arrays.has_route(999999)
    assert arrays.path_from(999999) is None
    with pytest.raises(KeyError):
        arrays.pref[999999]
