"""Tests for policy primitives and the adjacency index."""

import pytest

from repro.bgp.policy import AdjacencyIndex, RouteClass, exports_to_non_customers


class TestExportRule:
    def test_customer_and_self_export_everywhere(self):
        assert exports_to_non_customers(RouteClass.SELF, restricted=False)
        assert exports_to_non_customers(RouteClass.CUSTOMER, restricted=False)

    def test_peer_and_provider_do_not(self):
        assert not exports_to_non_customers(RouteClass.PEER, restricted=False)
        assert not exports_to_non_customers(RouteClass.PROVIDER, restricted=False)

    def test_restricted_customer_route_behaves_like_peer(self):
        # The partial-transit mechanism of §6.1.
        assert not exports_to_non_customers(RouteClass.CUSTOMER, restricted=True)


class TestRouteClassOrdering:
    def test_preference_order(self):
        assert RouteClass.SELF < RouteClass.CUSTOMER < RouteClass.PEER
        assert RouteClass.PEER < RouteClass.PROVIDER


class TestAdjacencyIndex:
    def test_tables(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph)
        assert 30 in adjacency.customers[10]
        assert 10 in adjacency.providers[30]
        assert 40 in adjacency.peers[30]
        assert (10, 35) in adjacency.partial

    def test_siblings_fold_into_peers(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph)
        assert 61 in adjacency.peers[60]
        assert 60 in adjacency.peers[61]

    def test_neighbor_lists_sorted(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph)
        for table in (adjacency.providers, adjacency.customers, adjacency.peers):
            for neighbors in table.values():
                assert neighbors == sorted(neighbors)

    def test_route_class(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph)
        assert adjacency.route_class(10, 30) is RouteClass.CUSTOMER
        assert adjacency.route_class(30, 10) is RouteClass.PROVIDER
        assert adjacency.route_class(30, 40) is RouteClass.PEER
        with pytest.raises(ValueError):
            adjacency.route_class(100, 200)

    def test_exclude_removes_links(self, tiny_graph):
        adjacency = AdjacencyIndex(tiny_graph, exclude={(30, 100)})
        assert 100 not in adjacency.customers[30]
        assert 30 not in adjacency.providers.get(100, [30])
