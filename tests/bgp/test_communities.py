"""Tests for BGP communities, codebooks, and ambiguity."""

import pytest

from repro.bgp.communities import (
    CommunityCodebook,
    CommunityRegistry,
    Meaning,
    RELATIONSHIP_MEANINGS,
)
from repro.utils.rng import make_rng


def _codebook(asn=174):
    return CommunityCodebook(
        asn=asn,
        values={
            Meaning.LEARNED_FROM_CUSTOMER: 100,
            Meaning.LEARNED_FROM_PEER: 200,
            Meaning.LEARNED_FROM_PROVIDER: 300,
            Meaning.BLACKHOLE: 666,
            Meaning.NO_EXPORT_TO_PEERS: 990,
        },
    )


class TestCodebook:
    def test_encode_decode_round_trip(self):
        book = _codebook()
        for meaning in Meaning:
            assert book.decode(book.encode(meaning)) is meaning

    def test_foreign_community_opaque(self):
        book = _codebook(asn=174)
        assert book.decode((3356, 100)) is None

    def test_unknown_value_opaque(self):
        book = _codebook()
        assert book.decode((174, 31337)) is None

    def test_relationship_value_set(self):
        values = _codebook().relationship_value_set()
        assert values == {
            100: Meaning.LEARNED_FROM_CUSTOMER,
            200: Meaning.LEARNED_FROM_PEER,
            300: Meaning.LEARNED_FROM_PROVIDER,
        }

    def test_cogent_990(self):
        # The §6.1 community: 174:990 means do-not-export-to-peers.
        assert _codebook(174).encode(Meaning.NO_EXPORT_TO_PEERS) == (174, 990)


class TestRegistry:
    def test_build_assigns_everyone(self):
        registry = CommunityRegistry.build([1, 2, 3], make_rng(0))
        assert len(registry) == 3
        for asn in (1, 2, 3):
            assert asn in registry

    def test_duplicate_rejected(self):
        registry = CommunityRegistry()
        registry.add(_codebook(1))
        with pytest.raises(ValueError):
            registry.add(_codebook(1))

    def test_decode_uses_owner_book(self):
        registry = CommunityRegistry.build(range(1, 60), make_rng(1))
        for asn in range(1, 60):
            book = registry.codebook(asn)
            community = book.encode(Meaning.LEARNED_FROM_PEER)
            assert registry.decode(community) is Meaning.LEARNED_FROM_PEER

    def test_ambiguity_exists_across_layouts(self):
        # The §3.2 point: the same value means different things to
        # different ASes (e.g. 666 = blackhole vs tags peering routes).
        registry = CommunityRegistry.build(range(1, 200), make_rng(2))
        ambiguous = registry.ambiguous_values()
        assert 666 in ambiguous
        meanings = set(ambiguous[666])
        assert Meaning.BLACKHOLE in meanings
        assert Meaning.LEARNED_FROM_PEER in meanings

    def test_relationship_meanings_constant(self):
        assert Meaning.BLACKHOLE not in RELATIONSHIP_MEANINGS
        assert len(RELATIONSHIP_MEANINGS) == 3
