"""Shared fixtures.

Two levels of test substrate:

* ``tiny_topology`` — a hand-built ~14-AS graph whose routing outcomes
  can be verified by hand; used for exact propagation/policy tests.
* ``scenario`` — the cached small generated scenario (a few hundred
  ASes) shared by every integration-level test; building it takes under
  a second and the cache makes the suite fast.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, small_scenario
from repro.bgp.communities import CommunityRegistry
from repro.topology.external_lists import ExternalLists
from repro.topology.generator import Topology
from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role
from repro.topology.ixp import IXP, IXPRegistry
from repro.topology.orgs import Organisation, OrgMap
from repro.topology.regions import Region, RegionMap
from repro.utils.rng import make_rng

#: The hand-built graph's AS numbering scheme, kept readable on purpose:
#: 10/20 clique, 30/40 mid transit, 35 partial-transit customer of 10,
#: 50 small transit, 100/200/300 stubs, 350 customer of 35,
#: 60/61 siblings (S2S-linked), 70 special stub peering with 10.
TINY_CLIQUE = (10, 20)


def build_tiny_graph() -> ASGraph:
    """The hand-checkable topology used throughout the unit tests."""
    graph = ASGraph()
    region = {
        10: Region.ARIN, 20: Region.RIPE, 30: Region.ARIN, 40: Region.RIPE,
        35: Region.ARIN, 50: Region.LACNIC, 100: Region.ARIN,
        200: Region.RIPE, 300: Region.LACNIC, 350: Region.ARIN,
        60: Region.RIPE, 61: Region.RIPE, 70: Region.ARIN,
    }
    role = {
        10: Role.CLIQUE, 20: Role.CLIQUE,
        30: Role.MID_TRANSIT, 40: Role.MID_TRANSIT, 35: Role.MID_TRANSIT,
        50: Role.SMALL_TRANSIT,
        100: Role.STUB, 200: Role.STUB, 300: Role.STUB, 350: Role.STUB,
        60: Role.STUB, 61: Role.STUB, 70: Role.STUB,
    }
    for asn in sorted(region):
        graph.add_as(ASNode(asn=asn, region=region[asn], role=role[asn]))
    graph.add_link(Link(provider=10, customer=20, rel=RelType.P2P))
    graph.add_link(Link(provider=10, customer=30, rel=RelType.P2C))
    graph.add_link(Link(provider=20, customer=40, rel=RelType.P2C))
    graph.add_link(Link(provider=30, customer=40, rel=RelType.P2P))
    graph.add_link(Link(provider=10, customer=35, rel=RelType.P2C, partial_transit=True))
    graph.add_link(Link(provider=35, customer=350, rel=RelType.P2C))
    graph.add_link(Link(provider=40, customer=50, rel=RelType.P2C))
    graph.add_link(Link(provider=30, customer=100, rel=RelType.P2C))
    graph.add_link(Link(provider=40, customer=200, rel=RelType.P2C))
    graph.add_link(Link(provider=30, customer=300, rel=RelType.P2C))
    graph.add_link(Link(provider=40, customer=300, rel=RelType.P2C))
    graph.add_link(Link(provider=50, customer=60, rel=RelType.P2C))
    graph.add_link(Link(provider=60, customer=61, rel=RelType.S2S))
    graph.add_link(Link(provider=30, customer=61, rel=RelType.P2C))
    graph.add_link(Link(provider=10, customer=70, rel=RelType.P2P))
    graph.add_link(Link(provider=30, customer=70, rel=RelType.P2C))
    return graph


def build_tiny_topology() -> Topology:
    """Wrap the tiny graph in a full Topology (orgs, regions, IXPs)."""
    graph = build_tiny_graph()
    orgs = OrgMap()
    orgs.add_org(Organisation("ORG-SIBS", "Sibling Org", "DE", [60, 61]))
    next_org = 0
    for node in graph.nodes():
        if node.asn in (60, 61):
            node.org_id = "ORG-SIBS"
            continue
        org_id = f"ORG-T{next_org:03d}"
        next_org += 1
        orgs.add_org(Organisation(org_id, f"Org {node.asn}", "US", [node.asn]))
        node.org_id = org_id
    region_map = RegionMap()
    region_map.add_iana_block(1, 9999, Region.ARIN)
    for node in graph.nodes():
        assert node.region is not None
        region_map.add_delegation(node.asn, node.region)
    ixps = IXPRegistry()
    ixp = IXP(ixp_id=0, name="TINY-IX", region=Region.ARIN)
    ixps.add_ixp(ixp)
    for member in (30, 40, 35):
        ixps.join(member, 0)
    external = ExternalLists(tier1=frozenset(TINY_CLIQUE), hypergiants=frozenset())
    topology = Topology(
        graph=graph,
        orgs=orgs,
        ixps=ixps,
        region_map=region_map,
        external_lists=external,
        cogent_asn=10,
    )
    return topology


@pytest.fixture
def tiny_graph() -> ASGraph:
    return build_tiny_graph()


@pytest.fixture
def tiny_topology() -> Topology:
    return build_tiny_topology()


@pytest.fixture
def tiny_communities(tiny_topology) -> CommunityRegistry:
    return CommunityRegistry.build(tiny_topology.graph.asns(), make_rng(5))


@pytest.fixture(scope="session")
def scenario():
    """The cached small generated scenario (shared, read-only)."""
    return small_scenario()


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig.small()
