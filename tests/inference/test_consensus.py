"""Tests for the consensus classifier and disagreement signal."""

import pytest

from repro.inference.asrank import ASRank
from repro.inference.consensus import ConsensusClassifier, disagreement_by_class
from repro.inference.gao import GaoInference
from repro.inference.problink import ProbLink
from repro.inference.toposcope import TopoScope
from repro.topology.graph import RelType


@pytest.fixture(scope="module")
def consensus(scenario):
    classifier = ConsensusClassifier([
        ASRank(),
        ProbLink(ixps=scenario.topology.ixps),
        TopoScope(ixps=scenario.topology.ixps),
    ])
    rels = classifier.infer(scenario.corpus)
    return classifier, rels


class TestConsensus:
    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            ConsensusClassifier([ASRank()])

    def test_covers_visible_links(self, scenario, consensus):
        _, rels = consensus
        assert len(rels) == len(scenario.corpus.visible_links())

    def test_member_results_recorded(self, consensus):
        classifier, _ = consensus
        assert set(classifier.member_results_) == {
            "asrank", "problink", "toposcope"
        }

    def test_unanimous_links_follow_members(self, scenario, consensus):
        classifier, rels = consensus
        members = list(classifier.member_results_.values())
        for key, share in classifier.disagreement_.items():
            if share == 0.0:
                first = members[0].rel_of(*key)
                first = RelType.P2P if first is RelType.P2P else RelType.P2C
                got = rels.rel_of(*key)
                got = RelType.P2P if got is RelType.P2P else RelType.P2C
                assert got is first

    def test_disagreement_bounded(self, consensus):
        classifier, _ = consensus
        assert classifier.disagreement_
        for share in classifier.disagreement_.values():
            assert 0.0 <= share <= 0.5

    def test_consensus_at_least_as_good_as_worst_member(self, scenario, consensus):
        classifier, rels = consensus
        graph = scenario.topology.graph

        def accuracy(relset):
            ok = total = 0
            for key in scenario.corpus.visible_links():
                if not graph.has_link(*key):
                    continue
                truth = graph.link(*key).rel
                if truth is RelType.S2S:
                    continue
                predicted = relset.rel_of(*key)
                if predicted is None:
                    continue
                predicted = (
                    RelType.P2P if predicted is RelType.P2P else RelType.P2C
                )
                total += 1
                ok += predicted is truth
            return ok / total

        member_scores = [
            accuracy(member) for member in classifier.member_results_.values()
        ]
        assert accuracy(rels) >= min(member_scores)

    def test_contested_links_are_hard(self, scenario, consensus):
        """Where the panel splits, the error rate is elevated — the
        disagreement signal is a usable hardness score."""
        classifier, rels = consensus
        graph = scenario.topology.graph
        contested = set(classifier.contested_links(min_disagreement=0.3))
        if len(contested) < 5:
            pytest.skip("panel nearly unanimous at this scale")

        def error_rate(keys):
            errors = total = 0
            for key in keys:
                if not graph.has_link(*key):
                    continue
                truth = graph.link(*key).rel
                if truth is RelType.S2S:
                    continue
                predicted = rels.rel_of(*key)
                predicted = (
                    RelType.P2P if predicted is RelType.P2P else RelType.P2C
                )
                total += 1
                errors += predicted is not truth
            return errors / max(1, total)

        unanimous = [
            key for key, share in classifier.disagreement_.items()
            if share == 0.0
        ]
        assert error_rate(contested) > error_rate(unanimous)

    def test_disagreement_by_class(self, scenario, consensus):
        classifier, _ = consensus
        per_class = disagreement_by_class(
            classifier.disagreement_,
            scenario.topological_classifier().classify,
        )
        assert per_class
        for value in per_class.values():
            assert 0.0 <= value <= 0.5
