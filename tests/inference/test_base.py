"""Tests for shared inference infrastructure (clique, ranks, distance)."""

import pytest

from repro.datasets.paths import CollectedRoute, PathCorpus
from repro.inference.base import distance_to_clique, infer_clique, transit_degree_rank


def _corpus(*paths):
    corpus = PathCorpus()
    for path in paths:
        corpus.add_route(CollectedRoute(vp=path[0], origin=path[-1], path=path))
    return corpus


class TestInferClique:
    def test_finds_true_clique_on_scenario(self, scenario):
        inferred = infer_clique(scenario.corpus)
        true_clique = set(scenario.topology.graph.clique())
        assert inferred, "no clique inferred"
        # At most one false member, and most of the core found (the
        # paper notes even curated Tier-1 lists only "largely overlap").
        assert len(set(inferred) - true_clique) <= 1
        assert len(set(inferred) & true_clique) >= len(true_clique) // 2

    def test_empty_corpus(self):
        assert infer_clique(PathCorpus()) == []

    def test_requires_visible_interconnection(self):
        # Two "big" ASes never seen adjacent cannot form a clique.
        corpus = _corpus((9, 1, 5), (9, 1, 6), (8, 2, 5), (8, 2, 6))
        clique = infer_clique(corpus, max_candidates=5)
        assert len(clique) == 1


class TestTransitDegreeRank:
    def test_dense_ranks(self):
        corpus = _corpus((9, 1, 5), (9, 1, 6), (9, 2, 5))
        ranks = transit_degree_rank(corpus)
        assert ranks[1] == 0  # degree 3: {9, 5, 6}
        assert ranks[2] == 1  # degree 2: {9, 5}

    def test_ties_break_by_asn(self):
        corpus = _corpus((9, 3, 5), (9, 2, 5))
        ranks = transit_degree_rank(corpus)
        assert ranks[2] < ranks[3]


class TestDistanceToClique:
    def test_distances(self):
        corpus = _corpus((1, 2, 3, 4))
        distances = distance_to_clique(corpus, clique=[1])
        assert distances[1] == 0
        assert distances[2] == 1
        assert distances[4] == 3

    def test_unreachable_gets_sentinel(self):
        corpus = _corpus((1, 2), (8, 9))
        distances = distance_to_clique(corpus, clique=[1])
        assert distances[9] > distances[2]

    def test_scenario_distances_bounded(self, scenario):
        clique = infer_clique(scenario.corpus)
        distances = distance_to_clique(scenario.corpus, clique)
        assert max(distances.values()) <= 8
