"""Tests for ProbLink, TopoScope, and the Gao baseline."""

import pytest

from repro.inference.gao import GaoInference, infer_gao
from repro.inference.problink import ProbLink
from repro.inference.toposcope import TopoScope
from repro.topology.graph import RelType


def _accuracy(scenario, rels):
    graph = scenario.topology.graph
    ok = total = 0
    for key, rel, _provider in rels.items():
        if not graph.has_link(*key):
            continue
        truth = graph.link(*key).rel
        if truth is RelType.S2S:
            continue
        total += 1
        predicted = RelType.P2P if rel is RelType.P2P else RelType.P2C
        ok += predicted is truth
    return ok / total


class TestProbLink:
    @pytest.fixture(scope="class")
    def problink(self, scenario):
        alg = ProbLink(ixps=scenario.topology.ixps)
        rels = alg.infer(scenario.corpus)
        return alg, rels

    def test_covers_all_visible_links(self, scenario, problink):
        _, rels = problink
        assert len(rels) == len(scenario.corpus.visible_links())

    def test_reasonable_accuracy(self, scenario, problink):
        _, rels = problink
        assert _accuracy(scenario, rels) > 0.8

    def test_differs_from_asrank(self, scenario, problink):
        _, rels = problink
        asrank = scenario.infer("asrank")
        flips = sum(
            1
            for key, rel, _ in rels.items()
            if asrank.rel_of(*key) is not None
            and (rel is RelType.P2P) != (asrank.rel_of(*key) is RelType.P2P)
        )
        assert flips > 0, "ProbLink never refined anything"

    def test_iterates(self, problink):
        alg, _ = problink
        assert 1 <= alg.iterations_run_ <= alg.max_iterations

    def test_posteriors_are_probabilities(self, problink):
        alg, _ = problink
        assert alg.posterior_p2p_
        assert all(0.0 <= p <= 1.0 for p in alg.posterior_p2p_.values())

    def test_clique_pinned_p2p(self, problink):
        alg, rels = problink
        clique = alg.clique_
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                if rels.rel_of(a, b) is not None:
                    assert rels.rel_of(a, b) is RelType.P2P


class TestTopoScope:
    @pytest.fixture(scope="class")
    def toposcope(self, scenario):
        alg = TopoScope(ixps=scenario.topology.ixps)
        rels = alg.infer(scenario.corpus)
        return alg, rels

    def test_covers_all_visible_links(self, scenario, toposcope):
        _, rels = toposcope
        assert len(rels) == len(scenario.corpus.visible_links())

    def test_reasonable_accuracy(self, scenario, toposcope):
        _, rels = toposcope
        assert _accuracy(scenario, rels) > 0.82

    def test_vote_shares_recorded(self, toposcope):
        alg, _ = toposcope
        assert alg.vote_share_
        assert all(0.5 <= share <= 1.0 for share in alg.vote_share_.values())

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            TopoScope(n_groups=1)

    def test_hidden_link_prediction(self, scenario):
        alg = TopoScope(ixps=scenario.topology.ixps)
        alg.infer(scenario.corpus)
        hidden = alg.predict_hidden_links(scenario.corpus, max_predictions=50)
        visible = set(scenario.corpus.visible_links())
        assert len(hidden) <= 50
        for key in hidden:
            assert key not in visible

    def test_hidden_links_need_ixps(self, scenario):
        alg = TopoScope(ixps=None)
        alg.infer(scenario.corpus)
        assert alg.predict_hidden_links(scenario.corpus) == []

    def test_some_hidden_links_really_exist(self, scenario):
        """TopoScope's pitch: predicted links "might exist" — in our
        world we can check against ground truth."""
        alg = TopoScope(ixps=scenario.topology.ixps)
        alg.infer(scenario.corpus)
        hidden = alg.predict_hidden_links(scenario.corpus, max_predictions=100)
        if not hidden:
            pytest.skip("no predictions on this scenario")
        real = sum(1 for key in hidden if scenario.topology.graph.has_link(*key))
        assert real >= 0  # smoke: and report the hit-rate via assertion msg
        # At least the mechanism should find one real invisible link on
        # a 300-AS scenario most of the time; tolerate zero but verify
        # the predictions are plausible (both endpoints visible ASes).
        visible_ases = set(scenario.corpus.visible_ases())
        for a, b in hidden:
            assert a in visible_ases and b in visible_ases


class TestGao:
    @pytest.fixture(scope="class")
    def gao(self, scenario):
        return infer_gao(scenario.corpus)

    def test_covers_all_visible_links(self, scenario, gao):
        assert len(gao) == len(scenario.corpus.visible_links())

    def test_p2c_heavy(self, scenario, gao):
        """Gao's known bias: most links land in P2C."""
        counts = gao.counts()
        assert counts[RelType.P2C] > counts[RelType.P2P]

    def test_worse_than_asrank(self, scenario, gao):
        """Two decades of refinement must show up."""
        asrank_acc = _accuracy(scenario, scenario.infer("asrank"))
        gao_acc = _accuracy(scenario, gao)
        assert gao_acc < asrank_acc

    def test_still_better_than_coin_toss(self, scenario, gao):
        assert _accuracy(scenario, gao) > 0.6

    def test_deterministic(self, scenario):
        a = GaoInference().infer(scenario.corpus)
        b = GaoInference().infer(scenario.corpus)
        assert sorted(a.items()) == sorted(b.items())
