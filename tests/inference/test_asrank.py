"""Tests for the ASRank implementation."""

import pytest

from repro.bgp.collectors import RouteCollector, VantagePoint
from repro.bgp.communities import CommunityRegistry
from repro.inference.asrank import ASRank, infer_asrank
from repro.topology.graph import RelType
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def inferred(scenario):
    return scenario.infer("asrank"), scenario.algorithm("asrank")


def _tiny_corpus(tiny_topology, vp_asns):
    registry = CommunityRegistry.build(tiny_topology.graph.asns(), make_rng(4))
    vps = [VantagePoint(asn=asn, full_feed=True) for asn in vp_asns]
    return RouteCollector(tiny_topology, vps, registry, set()).collect()


class TestOnTinyTopology:
    """The 13-AS graph is too flat for degree-based clique *detection*
    (a limitation real ASRank shares), so these tests pin the clique via
    ``clique_override`` and verify the relationship logic in isolation.
    """

    def test_clique_and_mesh(self, tiny_topology):
        corpus = _tiny_corpus(tiny_topology, (10, 20, 100, 200, 300))
        alg = ASRank(clique_override=[10, 20])
        rels = alg.infer(corpus)
        assert set(alg.clique_) == {10, 20}
        assert rels.rel_of(10, 20) is RelType.P2P

    def test_descending_links_found(self, tiny_topology):
        corpus = _tiny_corpus(tiny_topology, (10, 20, 100, 200, 300))
        rels = ASRank(clique_override=[10, 20]).infer(corpus)
        # Links below clique pairs are inferred P2C with the right side.
        assert rels.rel_of(20, 40) is RelType.P2C
        assert rels.provider_of(20, 40) == 20
        assert rels.rel_of(40, 200) is RelType.P2C
        assert rels.provider_of(40, 200) == 40

    def test_partial_transit_link_misinferred(self, tiny_topology):
        """The §6.1 mechanism end-to-end on a hand-built case."""
        corpus = _tiny_corpus(tiny_topology, (10, 20, 100, 200, 300))
        rels = ASRank(clique_override=[10, 20]).infer(corpus)
        # Ground truth: 10 -> 35 is (partial-transit) P2C; ASRank must
        # land on P2P because no "20 | 10 | 35" triplet can exist.
        assert not corpus.has_triplet(20, 10, 35)
        if rels.rel_of(10, 35) is not None:
            assert rels.rel_of(10, 35) is RelType.P2P


class TestOnScenario:
    def test_every_visible_link_classified(self, scenario, inferred):
        rels, _ = inferred
        for key in scenario.corpus.visible_links():
            assert rels.rel_of(*key) is not None

    def test_no_s2s_predictions(self, inferred):
        rels, _ = inferred
        assert rels.counts()[RelType.S2S] == 0

    def test_ground_truth_accuracy(self, scenario, inferred):
        rels, _ = inferred
        graph = scenario.topology.graph
        ok = total = 0
        for key, rel, _provider in rels.items():
            if not graph.has_link(*key):
                continue
            truth = graph.link(*key).rel
            if truth is RelType.S2S:
                continue
            total += 1
            predicted = RelType.P2P if rel is RelType.P2P else RelType.P2C
            ok += predicted is truth
        assert total > 500
        assert ok / total > 0.85

    def test_p2c_direction_accuracy(self, scenario, inferred):
        rels, _ = inferred
        graph = scenario.topology.graph
        ok = wrong = 0
        for key, rel, provider in rels.items():
            if rel is not RelType.P2C or not graph.has_link(*key):
                continue
            link = graph.link(*key)
            if link.rel is not RelType.P2C:
                continue
            if link.provider == provider:
                ok += 1
            else:
                wrong += 1
        assert ok / (ok + wrong) > 0.95

    def test_partial_transit_links_misinferred(self, scenario, inferred):
        """Visible partial-transit links must mostly land on P2P."""
        rels, _ = inferred
        graph = scenario.topology.graph
        visible = set(scenario.corpus.visible_links())
        partial = [
            link.key
            for link in graph.links()
            if link.partial_transit and link.key in visible
        ]
        assert partial, "scenario has no visible partial-transit links"
        wrong = sum(1 for key in partial if rels.rel_of(*key) is RelType.P2P)
        assert wrong / len(partial) > 0.6

    def test_deterministic(self, scenario):
        a = infer_asrank(scenario.corpus)
        b = infer_asrank(scenario.corpus)
        assert sorted(a.items()) == sorted(b.items())

    def test_descending_set_exposed(self, inferred):
        _, alg = inferred
        assert alg.descending_
        # descending pairs are directed: no pair may appear reversed
        # more often than a tiny conflict share.
        reversed_pairs = sum(
            1 for pair in alg.descending_ if (pair[1], pair[0]) in alg.descending_
        )
        assert reversed_pairs / len(alg.descending_) < 0.05
