"""Tests for the link feature extractor (classifier + Appendix C)."""

import pytest

from repro.inference.base import infer_clique
from repro.inference.features import DiscreteFeatures, LinkFeatureExtractor


@pytest.fixture(scope="module")
def extractor(scenario):
    graph = scenario.topology.graph
    return LinkFeatureExtractor(
        scenario.corpus,
        clique=infer_clique(scenario.corpus),
        ixps=scenario.topology.ixps,
        prefix_counts={n.asn: n.n_prefixes for n in graph.nodes()},
        address_counts={n.asn: n.n_addresses for n in graph.nodes()},
        manrs={n.asn for n in graph.nodes() if n.manrs_member},
        hijackers={n.asn for n in graph.nodes() if n.serial_hijacker},
    )


class TestDiscreteFeatures:
    def test_fields_match_tuple(self, extractor, scenario):
        key = scenario.corpus.visible_links()[0]
        feats = extractor.discrete(key)
        assert len(feats.as_tuple()) == len(DiscreteFeatures.FIELD_NAMES)

    def test_all_links_covered(self, extractor, scenario):
        all_feats = extractor.discrete_all()
        assert set(all_feats) == set(scenario.corpus.visible_links())

    def test_value_ranges(self, extractor, scenario):
        for key in scenario.corpus.visible_links():
            feats = extractor.discrete(key)
            assert feats.visibility_bucket >= 1  # visible => >= 1 VP
            assert 0 <= feats.degree_ratio_bucket <= 4
            assert 0 <= feats.clique_distance <= 4
            assert 0 <= feats.common_ixp_bucket <= 2

    def test_clique_links_have_distance_zero(self, extractor, scenario):
        clique = infer_clique(scenario.corpus)
        key = tuple(sorted(clique[:2]))
        if key in set(scenario.corpus.visible_links()):
            assert extractor.discrete(key).clique_distance == 0


class TestAppendixC:
    def test_all_twelve_features_present(self, extractor, scenario):
        key = scenario.corpus.visible_links()[0]
        features = extractor.appendix_c(key)
        expected = {
            "visibility_share", "prefixes_via", "addresses_via",
            "prefixes_originated", "addresses_originated", "observers",
            "receivers", "rel_transit_degree_diff", "rel_ppdc_diff",
            "common_ixps", "common_facilities", "behaviour_score",
        }
        assert set(features) == expected

    def test_visibility_share_bounds(self, extractor, scenario):
        for key in scenario.corpus.visible_links()[:200]:
            share = extractor.appendix_c(key)["visibility_share"]
            assert 0 < share <= 1

    def test_prefix_features_monotone(self, extractor, scenario):
        for key in scenario.corpus.visible_links()[:100]:
            features = extractor.appendix_c(key)
            assert features["addresses_via"] >= features["prefixes_via"]
            assert features["prefixes_via"] >= features["prefixes_originated"]

    def test_relative_diffs_bounded(self, extractor, scenario):
        rels = scenario.infer("asrank")
        features_all = extractor.appendix_c_all(rels=rels)
        for features in features_all.values():
            assert 0 <= features["rel_transit_degree_diff"] <= 1
            assert 0 <= features["rel_ppdc_diff"] <= 1

    def test_ppdc_requires_rels(self, extractor, scenario):
        key = scenario.corpus.visible_links()[0]
        assert extractor.appendix_c(key, rels=None)["rel_ppdc_diff"] == 0.0

    def test_behaviour_score_range(self, extractor, scenario):
        scores = {
            extractor.appendix_c(key)["behaviour_score"]
            for key in scenario.corpus.visible_links()[:400]
        }
        assert scores <= {-1.0, 0.0, 1.0}
        assert 1.0 in scores  # MANRS members are common among transits
