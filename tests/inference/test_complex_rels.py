"""Tests for complex-relationship (partial-transit / hybrid) detection."""

import pytest

from repro.inference.complex_rels import (
    ComplexRelationshipDetector,
    split_validation_for_complex,
)
from repro.topology.graph import RelType
from repro.validation.data import LabelSource, ValidationData, ValidationLabel


@pytest.fixture(scope="module")
def report(scenario):
    detector = ComplexRelationshipDetector(
        base_inference=scenario.infer("asrank"),
        clique=scenario.algorithm("asrank").clique_,
    )
    return detector.detect(scenario.corpus, scenario.raw_validation.data)


class TestPartialTransitDetection:
    def test_flags_some_links(self, report):
        assert report.partial_transit, "no partial-transit candidates found"

    def test_flags_are_genuinely_problematic(self, scenario, report):
        """Every flag must be a real investigation target: either true
        partial transit, or a link where the validation label conflicts
        with the path evidence (hard link / stale label) — the residue
        only a looking glass resolves, per §6.1."""
        graph = scenario.topology.graph
        rels = scenario.infer("asrank")
        raw = scenario.raw_validation.data
        true_partial = 0
        for flagged in report.partial_transit:
            assert graph.has_link(*flagged.key)
            link = graph.link(*flagged.key)
            if link.partial_transit:
                true_partial += 1
            else:
                # not partial: then it must be a validation/inference
                # conflict (P2C claimed, P2P inferred) — an LG case.
                from repro.topology.graph import RelType

                assert raw.provider_claim(flagged.key) is not None
                assert rels.rel_of(*flagged.key) is RelType.P2P
        # and a substantial share is the real phenomenon.
        assert true_partial / len(report.partial_transit) >= 0.4

    def test_provider_side_correct(self, scenario, report):
        graph = scenario.topology.graph
        for flagged in report.partial_transit:
            if not graph.has_link(*flagged.key):
                continue
            link = graph.link(*flagged.key)
            if link.partial_transit:
                assert flagged.provider == link.provider

    def test_recall_on_visible_partials(self, scenario, report):
        """A reasonable share of visible ground-truth partial-transit
        links should be recovered."""
        graph = scenario.topology.graph
        visible = set(scenario.corpus.visible_links())
        raw = scenario.raw_validation.data
        truth = {
            link.key
            for link in graph.links()
            if link.partial_transit
            and link.key in visible
            and link.key in raw  # community-based detection needs a label
            and scenario.corpus.link_visibility(link.key) >= 3
        }
        if not truth:
            pytest.skip("no validated visible partial transit at this scale")
        found = {c.key for c in report.partial_transit}
        assert len(found & truth) / len(truth) > 0.5

    def test_evidence_strings(self, report):
        for flagged in report.all_links():
            assert flagged.evidence
            assert flagged.kind in ("partial_transit", "hybrid")


class TestHybridDetection:
    def test_multilabel_links_flagged(self, scenario, report):
        raw = scenario.raw_validation.data
        multi = set(raw.multi_label_links())
        visible_multi = multi & set(scenario.corpus.visible_links())
        hybrid_keys = {c.key for c in report.hybrid}
        partial_keys = {c.key for c in report.partial_transit}
        # Every sufficiently visible multi-label link is surfaced as
        # complex one way or the other.
        missed = [
            key
            for key in visible_multi
            if scenario.corpus.link_visibility(key) >= 3
            and key not in hybrid_keys
            and key not in partial_keys
        ]
        assert not missed


class TestSplitValidation:
    def test_partition(self, scenario, report):
        data = ValidationData()
        some_complex = next(iter(report.keys()))
        data.add(*some_complex, ValidationLabel(
            rel=RelType.P2P, provider=None, source=LabelSource.COMMUNITY
        ))
        data.add(1, 2, ValidationLabel(
            rel=RelType.P2P, provider=None, source=LabelSource.COMMUNITY
        ))
        simple, complicated = split_validation_for_complex(data, report)
        assert complicated == [some_complex]
        assert simple == [(1, 2)]
