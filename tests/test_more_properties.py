"""Additional property-based tests: cleaning, Peerlock, temporal
validation, and the dataset file formats."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.applications.peerlock import evaluate_protection, generate_peerlock
from repro.datasets.asrel import RelationshipSet
from repro.evolution import TemporalValidation
from repro.topology.asn import AS_TRANS, RESERVED_RANGES
from repro.topology.graph import RelType, link_key
from repro.topology.orgs import OrgMap
from repro.topology.regions import Region
from repro.validation.cleaning import MultiLabelPolicy, clean_validation
from repro.validation.data import LabelSource, ValidationData, ValidationLabel

asns = st.integers(min_value=1, max_value=300)
rels_st = st.sampled_from([RelType.P2C, RelType.P2P])
junk_asns = st.sampled_from(
    [AS_TRANS, 64512, 64496, 65535, 4200000000]
)


@st.composite
def dirty_validation(draw):
    """Random validation data with known junk composition."""
    data = ValidationData()
    n_clean = draw(st.integers(min_value=0, max_value=25))
    n_junk = draw(st.integers(min_value=0, max_value=8))
    clean_links = set()
    for _ in range(n_clean):
        a, b = draw(asns), draw(asns)
        if a == b:
            b = a + 1
        rel = draw(rels_st)
        provider = min(a, b) if rel is RelType.P2C else None
        data.add(a, b, ValidationLabel(rel=rel, provider=provider,
                                       source=LabelSource.COMMUNITY))
        clean_links.add(link_key(a, b))
    junk_links = set()
    for _ in range(n_junk):
        a = draw(asns)
        junk = draw(junk_asns)
        data.add(a, junk, ValidationLabel(rel=RelType.P2P, provider=None,
                                          source=LabelSource.RPSL))
        junk_links.add(link_key(a, junk))
    return data, clean_links, junk_links


class TestCleaningProperties:
    @given(dirty_validation())
    def test_junk_always_removed(self, bundle):
        data, clean_links, junk_links = bundle
        cleaned = clean_validation(data, OrgMap())
        for key in junk_links:
            assert key not in cleaned
        report = cleaned.report
        assert report.n_as_trans_links + report.n_reserved_links == len(
            junk_links
        )

    @given(dirty_validation())
    def test_policies_never_invent_links(self, bundle):
        data, clean_links, junk_links = bundle
        for policy in MultiLabelPolicy:
            cleaned = clean_validation(data, OrgMap(), policy)
            assert set(cleaned.links()) <= clean_links

    @given(dirty_validation())
    def test_ignore_is_subset_of_always(self, bundle):
        data, _, _ = bundle
        ignore = clean_validation(data, OrgMap(), MultiLabelPolicy.IGNORE)
        always = clean_validation(data, OrgMap(), MultiLabelPolicy.ALWAYS_P2C)
        assert set(ignore.links()) <= set(always.links())


@st.composite
def small_relset(draw):
    rels = RelationshipSet()
    n = draw(st.integers(min_value=2, max_value=25))
    for _ in range(n):
        a, b = draw(asns), draw(asns)
        if a == b:
            continue
        rel = draw(rels_st)
        if rel is RelType.P2C:
            rels.set_p2c(provider=a, customer=b)
        else:
            rels.set_p2p(a, b)
    return rels


class TestPeerlockProperties:
    @given(small_relset(), asns)
    def test_truth_configs_are_exact(self, rels, asn):
        """A config generated from the same data it is scored against
        can never miss or over-protect."""
        config = generate_peerlock(asn, rels)
        score = evaluate_protection(asn, config, rels)
        assert score.exact

    @given(small_relset(), asns)
    def test_direct_sessions_never_filtered(self, rels, asn):
        """Routes received directly from a protected peer always pass."""
        config = generate_peerlock(asn, rels)
        for rule in config.rules:
            assert not rule.blocks(
                received_from=rule.protected, path=(rule.protected, 1, 2)
            )

    @given(small_relset(), asns)
    def test_unprotected_paths_never_filtered(self, rels, asn):
        config = generate_peerlock(asn, rels)
        clean_path = (90001, 90002)  # ASes outside the protected set
        assert not config.filters_route(received_from=90001, path=clean_path)


class TestTemporalValidationProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 11), rels_st),
            min_size=1,
            max_size=20,
        )
    )
    def test_unique_samples_bounds(self, observations):
        tv = TemporalValidation()
        for month, rel in observations:
            tv.add_month(month, {(1, 2): rel})
        n_total = len(observations)
        unique_strict = tv.unique_samples(min_gap_months=10**6)
        unique_loose = tv.unique_samples(min_gap_months=0)
        # Bounds: at least one, at most every observation; looser gaps
        # never yield fewer samples.
        assert 1 <= unique_strict <= unique_loose <= n_total

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_gap_monotonicity(self, gap_a, gap_b):
        tv = TemporalValidation()
        for month in range(12):
            tv.add_month(month, {(1, 2): RelType.P2P})
        small_gap, big_gap = sorted((gap_a, gap_b))
        assert tv.unique_samples(small_gap) >= tv.unique_samples(big_gap)


class TestDelegationProperties:
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        st.dictionaries(
            # routable ASNs only: RegionMap.lookup deliberately returns
            # None for reserved ASNs and AS_TRANS, whatever the files say
            # (hypothesis originally found this with ASN 64198).
            st.integers(min_value=1, max_value=60000).filter(
                lambda asn: asn != AS_TRANS
            ),
            st.sampled_from(list(Region)),
            min_size=1,
            max_size=30,
        )
    )
    def test_delegation_round_trip(self, tmp_path_factory, assignments):
        from repro.datasets.delegation import (
            region_map_from_files,
            write_delegation_files,
        )

        directory = tmp_path_factory.mktemp("delegations")
        files = write_delegation_files(assignments, directory)
        rebuilt = region_map_from_files([], files.values())
        for asn, region in assignments.items():
            assert rebuilt.lookup(asn) is region
