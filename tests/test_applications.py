"""Tests for the §7 downstream applications (Peerlock, recommender)."""

import pytest

from repro.applications.peerlock import (
    evaluate_protection,
    generate_peerlock,
)
from repro.applications.recommender import recommend_ixps, recommend_peers
from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import RelType
from repro.topology.ixp import IXP, IXPRegistry
from repro.topology.regions import Region


@pytest.fixture
def rels():
    r = RelationshipSet()
    # 1 and 2 are big peers; 3 buys from 1; 4 buys from 2; 5 buys from 4.
    r.set_p2p(1, 2)
    r.set_p2c(provider=1, customer=3)
    r.set_p2c(provider=2, customer=4)
    r.set_p2c(provider=4, customer=5)
    r.set_p2c(provider=9, customer=1)  # 9 is 1's upstream (for allow-lists)
    return r


class TestPeerlock:
    def test_protects_peers_by_default(self, rels):
        config = generate_peerlock(2, rels)
        assert config.protected_set == {1}

    def test_allowed_neighbors_are_upstreams(self, rels):
        config = generate_peerlock(2, rels)
        rule = config.rules[0]
        assert rule.protected == 1
        assert rule.allowed_neighbors == (9,)

    def test_blocks_leaked_route(self, rels):
        # AS2 receives a path containing AS1 from AS4 (a customer that
        # should never carry AS1's routes): leak, blocked.
        config = generate_peerlock(2, rels)
        assert config.filters_route(received_from=4, path=(4, 3, 1, 9))

    def test_accepts_direct_and_upstream(self, rels):
        config = generate_peerlock(2, rels)
        assert not config.filters_route(received_from=1, path=(1, 3))
        assert not config.filters_route(received_from=9, path=(9, 1, 3))

    def test_accepts_unrelated_routes(self, rels):
        config = generate_peerlock(2, rels)
        assert not config.filters_route(received_from=4, path=(4, 5))

    def test_explicit_protected_set(self, rels):
        config = generate_peerlock(2, rels, protected=[1, 4])
        assert config.protected_set == {1, 4}

    def test_render_contains_rules(self, rels):
        text = generate_peerlock(2, rels).render()
        assert "peerlock filters for AS2" in text
        assert "deny _(1)_" in text

    def test_evaluation_exact_on_truth(self, rels):
        config = generate_peerlock(2, rels)
        score = evaluate_protection(2, config, rels)
        assert score.exact

    def test_evaluation_detects_misclassification(self, rels):
        # An inference that saw the 1-2 peering as P2C produces a config
        # with missing protection — the paper's downstream-risk point.
        wrong = rels.copy()
        wrong.set_p2c(provider=1, customer=2)
        config = generate_peerlock(2, wrong)
        score = evaluate_protection(2, config, rels)
        assert score.missing_protection == 1
        assert not score.exact

    def test_scenario_scale(self, scenario):
        """Configs from inferred vs ground-truth relationships differ
        exactly where the inference erred."""
        asn = scenario.algorithm("asrank").clique_[0]
        inferred_config = generate_peerlock(asn, scenario.infer("asrank"))
        truth = RelationshipSet()
        for link in scenario.topology.graph.links():
            if link.rel is RelType.P2C:
                truth.set_p2c(link.provider, link.customer)
            elif link.rel is RelType.P2P:
                truth.set_p2p(link.provider, link.customer)
        score = evaluate_protection(asn, inferred_config, truth)
        assert score.n_rules > 0
        # Quantifies the §2 warning; no exactness expected, just sane
        # accounting.
        assert score.missing_protection + score.spurious_protection >= 0


class TestRecommender:
    @pytest.fixture
    def ixps(self):
        registry = IXPRegistry()
        registry.add_ixp(IXP(0, "IX-A", Region.RIPE, members={3, 4}))
        registry.add_ixp(IXP(1, "IX-B", Region.ARIN, members={3, 2}))
        return registry

    def test_recommends_by_new_reach(self, rels, ixps):
        # AS3 (customer of 1): AS2 at IX-B brings {2, 4, 5} = 3 new
        # ASes; AS4 at IX-A brings {4, 5} = 2.
        recs = recommend_peers(3, rels, ixps=ixps)
        assert [r.asn for r in recs[:2]] == [2, 4]
        assert recs[0].new_cone_ases == 3
        assert recs[0].common_ixps == (1,)
        assert recs[1].new_cone_ases == 2
        assert recs[1].common_ixps == (0,)

    def test_excludes_existing_neighbors(self, rels, ixps):
        recs = recommend_peers(3, rels, ixps=ixps)
        assert all(r.asn != 1 for r in recs)

    def test_colocation_requirement(self, rels, ixps):
        with_req = recommend_peers(3, rels, ixps=ixps, require_colocation=True)
        without = recommend_peers(3, rels, ixps=ixps, require_colocation=False)
        assert len(without) >= len(with_req)

    def test_address_weighting(self, rels, ixps):
        recs = recommend_peers(
            3, rels, ixps=ixps, address_counts={4: 100, 5: 50}
        )
        assert recs[0].new_addresses == 150

    def test_ixp_recommendation(self, rels, ixps):
        # AS5 is member of nothing; IX-A offers peering with 3 and 4
        # (4 is 5's provider -> excluded), IX-B offers 3 and 2 (2 is
        # 5's grand-provider but NOT a direct neighbour -> counted).
        recs = recommend_ixps(5, rels, ixps)
        assert recs
        names = {r.name for r in recs}
        assert "IX-A" in names or "IX-B" in names
        for rec in recs:
            assert rec.n_candidates > 0

    def test_already_joined_excluded(self, rels, ixps):
        recs = recommend_ixps(3, rels, ixps)
        assert all(r.ixp_id not in (0, 1) for r in recs)

    def test_scenario_scale(self, scenario):
        stub = next(
            n.asn
            for n in scenario.topology.graph.nodes()
            if n.role.value == "stub"
        )
        recs = recommend_peers(
            stub,
            scenario.infer("asrank"),
            ixps=scenario.topology.ixps,
            require_colocation=False,
            top_n=5,
        )
        assert len(recs) <= 5
        # sorted by benefit
        benefits = [r.new_cone_ases for r in recs]
        assert benefits == sorted(benefits, reverse=True)
